#![warn(missing_docs)]

//! Byte-keyed minimal-FSA / double-array trie with a flat arena encoding.
//!
//! The paper's Agglut pipeline is dictionary machinery all the way down:
//! MeCab-style longest-match segmentation, the lexicon PoS tagger, the
//! attribute-alias tables of the seeding stage, and the frozen veto
//! blocklist. This crate gives all of them one substrate:
//!
//! * [`FstBuilder`] takes **sorted, unique** `(key, value)` pairs and
//!   emits a single flat `Vec<u8>` arena (little-endian, position
//!   independent, no internal pointers);
//! * [`FstView`] borrows any `&[u8]` holding such an arena and answers
//!   [`FstView::get`] and [`FstView::longest_match_at`] in one forward
//!   walk with **no allocation** — one array probe per input byte;
//! * [`Fst`] owns the arena behind an `Arc<[u8]>` so frozen models can
//!   share a loaded bundle's bytes without copying or lifetimes.
//!
//! # Arena layout (all integers little-endian)
//!
//! ```text
//! offset  size          field
//! 0       4             magic  "PFST"
//! 4       4             format version (= 1)
//! 8       4             n_states
//! 12      4             n_keys
//! 16      4             max_key_bytes (longest key, in bytes)
//! 20      4             reserved (zero)
//! 24      8             meta — caller-defined slot (e.g. lexicon max_chars)
//! 32      4·n_states    base  array (u32)
//! 32+4n   4·n_states    check array (u32)
//! 32+8n   4·n_states    value array (u32)
//! ```
//!
//! State `0` is the root. A transition from state `s` on byte `c` goes
//! to `next = base[s] + c`, and is valid iff `next < n_states` and
//! `check[next] == s`. `base[s] == 0` means "no outgoing transitions"
//! (real bases are ≥ 1, so no transition can land on the root slot).
//! `value[s] == u32::MAX` marks a non-accepting state, which is why
//! stored values must be `< u32::MAX`. Free slots carry
//! `check == u32::MAX`, an id no state can have.
//!
//! Every read is bounds-checked against the arena length, so a
//! corrupted arena can return wrong lookups but can never panic or read
//! out of bounds; bundle loading pairs each arena with an FNV-1a
//! section hash to rule the former out too.

use std::fmt;
use std::sync::Arc;

/// Leading magic bytes of a serialized arena.
pub const FST_MAGIC: [u8; 4] = *b"PFST";
/// Arena format version emitted by this crate.
pub const FST_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const FST_HEADER_BYTES: usize = 32;

/// Sentinel in the `value` array marking a non-accepting state.
const NO_VALUE: u32 = u32::MAX;
/// Sentinel in the `check` array marking a free (unclaimed) slot.
const FREE: u32 = u32::MAX;

/// Errors from building or opening an arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FstError {
    /// Input pairs were not in strictly increasing key order.
    UnsortedKeys {
        /// Index of the offending pair.
        index: usize,
    },
    /// A value was `u32::MAX`, which is reserved as the no-value marker.
    ReservedValue {
        /// Index of the offending pair.
        index: usize,
    },
    /// The arena does not start with the `PFST` magic.
    BadMagic,
    /// The arena's format version is not supported.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The arena is shorter than its header declares.
    Truncated {
        /// Bytes required by the header.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
}

impl fmt::Display for FstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FstError::UnsortedKeys { index } => {
                write!(f, "keys not in strictly increasing order at pair {index}")
            }
            FstError::ReservedValue { index } => {
                write!(f, "value u32::MAX is reserved (pair {index})")
            }
            FstError::BadMagic => write!(f, "bad arena magic (want PFST)"),
            FstError::UnsupportedVersion { found } => {
                write!(f, "unsupported arena version {found} (want {FST_VERSION})")
            }
            FstError::Truncated { expected, found } => {
                write!(f, "truncated arena: header declares {expected} bytes, got {found}")
            }
        }
    }
}

impl std::error::Error for FstError {}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// One node of the intermediate trie built before slot assignment.
struct TrieNode {
    value: u32,
    /// Children as `(byte, node index)`, in increasing byte order.
    children: Vec<(u8, usize)>,
}

/// Builds a double-array arena from sorted `(key, value)` pairs.
///
/// Keys must be in strictly increasing byte order (duplicates are
/// rejected as unsorted); values must be `< u32::MAX`. The build is a
/// pure function of its input, so identical inputs produce
/// byte-identical arenas on every platform.
pub struct FstBuilder {
    nodes: Vec<TrieNode>,
    last_key: Vec<u8>,
    n_keys: u32,
    max_key_bytes: u32,
    meta: u64,
    error: Option<FstError>,
}

impl Default for FstBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FstBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FstBuilder {
            nodes: vec![TrieNode { value: NO_VALUE, children: Vec::new() }],
            last_key: Vec::new(),
            n_keys: 0,
            max_key_bytes: 0,
            meta: 0,
            error: None,
        }
    }

    /// Sets the caller-defined 64-bit meta slot stored in the header.
    pub fn meta(mut self, meta: u64) -> Self {
        self.meta = meta;
        self
    }

    /// Adds the next pair. Keys must arrive in strictly increasing
    /// byte order; the error is reported by [`FstBuilder::finish`].
    pub fn insert(&mut self, key: &[u8], value: u32) {
        if self.error.is_some() {
            return;
        }
        let index = self.n_keys as usize;
        if self.n_keys > 0 && key <= self.last_key.as_slice() {
            self.error = Some(FstError::UnsortedKeys { index });
            return;
        }
        if value == NO_VALUE {
            self.error = Some(FstError::ReservedValue { index });
            return;
        }
        // Because keys are sorted, the insertion path can only extend
        // the most recently added child at every level.
        let mut cur = 0usize;
        for &b in key {
            let next = match self.nodes[cur].children.last() {
                Some(&(last_b, idx)) if last_b == b => idx,
                _ => {
                    let idx = self.nodes.len();
                    self.nodes.push(TrieNode { value: NO_VALUE, children: Vec::new() });
                    self.nodes[cur].children.push((b, idx));
                    idx
                }
            };
            cur = next;
        }
        self.nodes[cur].value = value;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.n_keys += 1;
        self.max_key_bytes = self.max_key_bytes.max(key.len() as u32);
    }

    /// Assigns double-array slots and serializes the arena.
    pub fn finish(self) -> Result<Vec<u8>, FstError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        // Breadth-first slot assignment with a first-fit base search.
        let mut base: Vec<u32> = vec![0];
        let mut check: Vec<u32> = vec![FREE];
        let mut value: Vec<u32> = vec![self.nodes[0].value];
        // Lowest slot that might still be free; purely a search hint.
        let mut first_free = 1usize;

        let mut queue: std::collections::VecDeque<(usize, u32)> = std::collections::VecDeque::new();
        queue.push_back((0, 0));
        while let Some((node_idx, slot)) = queue.pop_front() {
            let children = &self.nodes[node_idx].children;
            if children.is_empty() {
                continue;
            }
            let c0 = children[0].0 as usize;
            let mut b = std::cmp::max(1, first_free.saturating_sub(c0));
            'search: loop {
                for &(c, _) in children {
                    let s = b + c as usize;
                    if s < check.len() && check[s] != FREE {
                        b += 1;
                        continue 'search;
                    }
                }
                break;
            }
            // Claim the slots, growing the arrays as needed.
            let max_slot = b + children[children.len() - 1].0 as usize;
            if max_slot >= check.len() {
                base.resize(max_slot + 1, 0);
                check.resize(max_slot + 1, FREE);
                value.resize(max_slot + 1, NO_VALUE);
            }
            base[slot as usize] = b as u32;
            for &(c, child_idx) in children {
                let s = b + c as usize;
                check[s] = slot;
                value[s] = self.nodes[child_idx].value;
                queue.push_back((child_idx, s as u32));
            }
            while first_free < check.len() && check[first_free] != FREE {
                first_free += 1;
            }
        }

        let n_states = check.len() as u32;
        let mut out = Vec::with_capacity(FST_HEADER_BYTES + 12 * check.len());
        out.extend_from_slice(&FST_MAGIC);
        out.extend_from_slice(&FST_VERSION.to_le_bytes());
        out.extend_from_slice(&n_states.to_le_bytes());
        out.extend_from_slice(&self.n_keys.to_le_bytes());
        out.extend_from_slice(&self.max_key_bytes.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&self.meta.to_le_bytes());
        for arr in [&base, &check, &value] {
            for &x in arr.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Ok(out)
    }
}

/// Builds an arena from sorted `(key, value)` pairs in one call.
pub fn build_fst<K: AsRef<[u8]>>(pairs: &[(K, u32)], meta: u64) -> Result<Vec<u8>, FstError> {
    let mut b = FstBuilder::new().meta(meta);
    for (k, v) in pairs {
        b.insert(k.as_ref(), *v);
    }
    b.finish()
}

// ---------------------------------------------------------------------------
// View
// ---------------------------------------------------------------------------

/// Reads a `u32` at `off` without any alignment requirement.
#[inline]
fn read_u32(data: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[off..off + 4]);
    u32::from_le_bytes(b)
}

/// A borrowed, allocation-free view over a serialized arena.
#[derive(Clone, Copy)]
pub struct FstView<'a> {
    data: &'a [u8],
    n_states: usize,
}

impl<'a> FstView<'a> {
    /// Opens a view over `data`, validating the header and length.
    pub fn new(data: &'a [u8]) -> Result<Self, FstError> {
        if data.len() < FST_HEADER_BYTES {
            return Err(FstError::Truncated { expected: FST_HEADER_BYTES, found: data.len() });
        }
        if data[..4] != FST_MAGIC {
            return Err(FstError::BadMagic);
        }
        let version = read_u32(data, 4);
        if version != FST_VERSION {
            return Err(FstError::UnsupportedVersion { found: version });
        }
        let n_states = read_u32(data, 8) as usize;
        let expected = FST_HEADER_BYTES + 12 * n_states;
        if data.len() < expected {
            return Err(FstError::Truncated { expected, found: data.len() });
        }
        Ok(FstView { data, n_states })
    }

    /// Number of keys stored in the automaton.
    pub fn n_keys(&self) -> usize {
        read_u32(self.data, 12) as usize
    }

    /// True when the automaton stores no keys.
    pub fn is_empty(&self) -> bool {
        self.n_keys() == 0
    }

    /// Length in bytes of the longest key.
    pub fn max_key_bytes(&self) -> usize {
        read_u32(self.data, 16) as usize
    }

    /// Exact serialized size the header declares: a well-formed arena
    /// is exactly this many bytes (strict container formats can reject
    /// trailing bytes).
    pub fn arena_len(&self) -> usize {
        FST_HEADER_BYTES + 12 * self.n_states
    }

    /// The caller-defined meta slot from the header.
    pub fn meta(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[24..32]);
        u64::from_le_bytes(b)
    }

    #[inline]
    fn base(&self, s: usize) -> u32 {
        read_u32(self.data, FST_HEADER_BYTES + 4 * s)
    }

    #[inline]
    fn check(&self, s: usize) -> u32 {
        read_u32(self.data, FST_HEADER_BYTES + 4 * self.n_states + 4 * s)
    }

    #[inline]
    fn value_at(&self, s: usize) -> u32 {
        read_u32(self.data, FST_HEADER_BYTES + 8 * self.n_states + 4 * s)
    }

    /// One transition: from state `s` on byte `c`, or `None`.
    #[inline]
    fn step(&self, s: usize, c: u8) -> Option<usize> {
        let b = self.base(s);
        if b == 0 {
            return None;
        }
        let next = b as usize + c as usize;
        if next < self.n_states && self.check(next) == s as u32 {
            Some(next)
        } else {
            None
        }
    }

    /// Exact lookup: the value stored for `key`, if present.
    pub fn get(&self, key: &[u8]) -> Option<u32> {
        let mut s = 0usize;
        for &c in key {
            s = self.step(s, c)?;
        }
        let v = self.value_at(s);
        (v != NO_VALUE).then_some(v)
    }

    /// Longest key matching a prefix of `bytes[pos..]`, in one forward
    /// walk: returns `(match_len_in_bytes, value)` for the longest
    /// accepting prefix, or `None` when no key matches at `pos`.
    pub fn longest_match_at(&self, bytes: &[u8], pos: usize) -> Option<(usize, u32)> {
        let mut s = 0usize;
        let mut best: Option<(usize, u32)> = None;
        for (i, &c) in bytes.get(pos..)?.iter().enumerate() {
            match self.step(s, c) {
                Some(next) => {
                    s = next;
                    let v = self.value_at(s);
                    if v != NO_VALUE {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Iterates all `(key, value)` pairs in increasing key order.
    ///
    /// This walks the automaton scanning all 256 candidate bytes per
    /// state, so it is strictly a cold-path operation (serialization,
    /// equality, re-encoding) — lookups never pay for it.
    pub fn iter(&self) -> FstIter<'a> {
        let root_value = if self.n_states > 0 { self.value_at(0) } else { NO_VALUE };
        FstIter {
            view: *self,
            stack: if self.n_states > 0 { vec![(0, 0)] } else { Vec::new() },
            key: Vec::new(),
            pending_root: root_value != NO_VALUE,
        }
    }
}

impl fmt::Debug for FstView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FstView")
            .field("n_states", &self.n_states)
            .field("n_keys", &self.n_keys())
            .finish()
    }
}

/// Iterator over all `(key, value)` pairs of an arena, sorted by key.
pub struct FstIter<'a> {
    view: FstView<'a>,
    /// DFS stack of `(state, next byte to try)`.
    stack: Vec<(usize, u16)>,
    key: Vec<u8>,
    pending_root: bool,
}

impl Iterator for FstIter<'_> {
    type Item = (Vec<u8>, u32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pending_root {
            self.pending_root = false;
            return Some((Vec::new(), self.view.value_at(0)));
        }
        while let Some((state, next_byte)) = self.stack.last_mut() {
            let s = *state;
            let mut found = None;
            for c in *next_byte..256 {
                if let Some(child) = self.view.step(s, c as u8) {
                    found = Some((c, child));
                    break;
                }
            }
            match found {
                Some((c, child)) => {
                    *next_byte = c + 1;
                    self.key.push(c as u8);
                    self.stack.push((child, 0));
                    let v = self.view.value_at(child);
                    if v != NO_VALUE {
                        return Some((self.key.clone(), v));
                    }
                }
                None => {
                    self.stack.pop();
                    self.key.pop();
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Owned arena
// ---------------------------------------------------------------------------

/// An arena with shared ownership of its bytes.
///
/// `Fst` either owns a freshly built arena or borrows a sub-range of a
/// larger shared buffer (a loaded bundle) — both behind `Arc<[u8]>`,
/// so cloning is a reference-count bump and no lifetime ties a frozen
/// model to the buffer it was loaded from.
#[derive(Clone)]
pub struct Fst {
    bytes: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Fst {
    /// Takes ownership of a whole arena built by [`FstBuilder`].
    pub fn from_vec(bytes: Vec<u8>) -> Result<Self, FstError> {
        let len = bytes.len();
        Self::from_shared(Arc::from(bytes.into_boxed_slice()), 0, len)
    }

    /// Borrows `bytes[start..start + len]` of a shared buffer as an
    /// arena, without copying.
    pub fn from_shared(bytes: Arc<[u8]>, start: usize, len: usize) -> Result<Self, FstError> {
        let slice = bytes
            .get(start..start + len)
            .ok_or(FstError::Truncated { expected: start + len, found: bytes.len() })?;
        FstView::new(slice)?;
        Ok(Fst { bytes, start, len })
    }

    /// Builds an arena from sorted `(key, value)` pairs.
    pub fn build<K: AsRef<[u8]>>(pairs: &[(K, u32)], meta: u64) -> Result<Self, FstError> {
        Self::from_vec(build_fst(pairs, meta)?)
    }

    /// The serialized arena bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[self.start..self.start + self.len]
    }

    /// A borrowed view for allocation-free lookups.
    pub fn view(&self) -> FstView<'_> {
        // The range and header were validated at construction.
        FstView::new(self.as_bytes()).expect("validated at construction")
    }

    /// See [`FstView::get`].
    pub fn get(&self, key: &[u8]) -> Option<u32> {
        self.view().get(key)
    }

    /// See [`FstView::longest_match_at`].
    pub fn longest_match_at(&self, bytes: &[u8], pos: usize) -> Option<(usize, u32)> {
        self.view().longest_match_at(bytes, pos)
    }

    /// Number of keys.
    pub fn n_keys(&self) -> usize {
        self.view().n_keys()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.n_keys() == 0
    }

    /// The caller-defined meta slot.
    pub fn meta(&self) -> u64 {
        self.view().meta()
    }

    /// Iterates all `(key, value)` pairs in increasing key order.
    pub fn iter(&self) -> FstIter<'_> {
        self.view().iter()
    }
}

impl fmt::Debug for Fst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fst")
            .field("n_keys", &self.n_keys())
            .field("arena_bytes", &self.len)
            .finish()
    }
}

impl PartialEq for Fst {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Fst {}

impl Default for Fst {
    /// An empty automaton (no keys, meta 0).
    fn default() -> Self {
        Fst::build::<&[u8]>(&[], 0).expect("empty build cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fst_of(pairs: &[(&str, u32)]) -> Fst {
        let pairs: Vec<(&[u8], u32)> = pairs.iter().map(|(k, v)| (k.as_bytes(), *v)).collect();
        Fst::build(&pairs, 0).unwrap()
    }

    #[test]
    fn get_hits_and_misses() {
        let f = fst_of(&[("aka", 1), ("akane", 2), ("kaban", 3), ("kg", 4)]);
        assert_eq!(f.get(b"aka"), Some(1));
        assert_eq!(f.get(b"akane"), Some(2));
        assert_eq!(f.get(b"kaban"), Some(3));
        assert_eq!(f.get(b"kg"), Some(4));
        assert_eq!(f.get(b"ak"), None);
        assert_eq!(f.get(b"akan"), None);
        assert_eq!(f.get(b"akanex"), None);
        assert_eq!(f.get(b""), None);
        assert_eq!(f.get(b"zzz"), None);
        assert_eq!(f.n_keys(), 4);
    }

    #[test]
    fn longest_match_prefers_longer_key() {
        let f = fst_of(&[("aka", 1), ("akane", 2)]);
        assert_eq!(f.longest_match_at(b"akane", 0), Some((5, 2)));
        assert_eq!(f.longest_match_at(b"akan", 0), Some((3, 1)));
        assert_eq!(f.longest_match_at(b"xakane", 1), Some((5, 2)));
        assert_eq!(f.longest_match_at(b"xxx", 0), None);
        assert_eq!(f.longest_match_at(b"akane", 5), None);
        assert_eq!(f.longest_match_at(b"akane", 99), None);
    }

    #[test]
    fn empty_fst_matches_nothing() {
        let f = Fst::default();
        assert!(f.is_empty());
        assert_eq!(f.get(b"a"), None);
        assert_eq!(f.longest_match_at(b"abc", 0), None);
        assert_eq!(f.iter().count(), 0);
    }

    #[test]
    fn empty_key_is_storable() {
        let f = fst_of(&[("", 7), ("a", 8)]);
        assert_eq!(f.get(b""), Some(7));
        assert_eq!(f.get(b"a"), Some(8));
        // A zero-length match is still a match for the empty key.
        assert_eq!(f.longest_match_at(b"zz", 0), None);
        assert_eq!(f.longest_match_at(b"a", 0), Some((1, 8)));
    }

    #[test]
    fn unsorted_and_duplicate_keys_are_rejected() {
        let mut b = FstBuilder::new();
        b.insert(b"b", 0);
        b.insert(b"a", 1);
        assert_eq!(b.finish(), Err(FstError::UnsortedKeys { index: 1 }));

        let mut b = FstBuilder::new();
        b.insert(b"a", 0);
        b.insert(b"a", 1);
        assert_eq!(b.finish(), Err(FstError::UnsortedKeys { index: 1 }));
    }

    #[test]
    fn reserved_value_is_rejected() {
        let mut b = FstBuilder::new();
        b.insert(b"a", u32::MAX);
        assert_eq!(b.finish(), Err(FstError::ReservedValue { index: 0 }));
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let pairs = [("", 9), ("aka", 1), ("akane", 2), ("kaban", 3), ("kg", 4)];
        let f = fst_of(&pairs);
        let got: Vec<(String, u32)> = f
            .iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), v))
            .collect();
        let want: Vec<(String, u32)> =
            pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn meta_round_trips() {
        let f = Fst::build(&[(b"ab".as_slice(), 5)], 0xDEAD_BEEF_0042).unwrap();
        assert_eq!(f.meta(), 0xDEAD_BEEF_0042);
    }

    #[test]
    fn arena_round_trips_through_bytes() {
        let f = fst_of(&[("aka", 1), ("kaban", 3)]);
        let bytes = f.as_bytes().to_vec();
        let g = Fst::from_vec(bytes).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.get(b"kaban"), Some(3));
    }

    #[test]
    fn build_is_deterministic() {
        let a = fst_of(&[("aka", 1), ("kaban", 3), ("kg", 4)]);
        let b = fst_of(&[("aka", 1), ("kaban", 3), ("kg", 4)]);
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn shared_sub_range_view() {
        let inner = fst_of(&[("x", 1), ("xy", 2)]);
        let mut buf = vec![0u8; 16]; // unaligned-looking prefix
        buf.extend_from_slice(inner.as_bytes());
        buf.extend_from_slice(&[0xAB; 5]);
        let shared: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
        let f = Fst::from_shared(shared, 16, inner.as_bytes().len()).unwrap();
        assert_eq!(f.get(b"xy"), Some(2));
        assert_eq!(f, inner);
    }

    #[test]
    fn header_validation_rejects_garbage() {
        assert_eq!(Fst::from_vec(vec![]).unwrap_err(), FstError::Truncated { expected: 32, found: 0 });
        assert_eq!(Fst::from_vec(vec![0u8; 40]).unwrap_err(), FstError::BadMagic);

        let good = fst_of(&[("ab", 1)]);
        let mut bad = good.as_bytes().to_vec();
        bad[4] = 99; // version
        assert_eq!(Fst::from_vec(bad).unwrap_err(), FstError::UnsupportedVersion { found: 99 });

        let mut short = good.as_bytes().to_vec();
        short.truncate(short.len() - 1);
        assert!(matches!(Fst::from_vec(short).unwrap_err(), FstError::Truncated { .. }));
    }

    #[test]
    fn corrupt_arena_lookups_do_not_panic() {
        let good = fst_of(&[("aka", 1), ("akane", 2), ("kg", 4)]);
        // Flipping base/check bytes must never cause a panic, only
        // (possibly) wrong lookups.
        for i in FST_HEADER_BYTES..good.as_bytes().len() {
            let mut bytes = good.as_bytes().to_vec();
            bytes[i] ^= 0xFF;
            if let Ok(f) = Fst::from_vec(bytes) {
                let _ = f.get(b"akane");
                let _ = f.longest_match_at(b"akane kg", 0);
            }
        }
    }

    #[test]
    fn dense_byte_alphabet() {
        let keys: Vec<(Vec<u8>, u32)> =
            (0u32..=255).map(|b| (vec![b as u8, b as u8], b)).collect();
        let pairs: Vec<(&[u8], u32)> = keys.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
        let f = Fst::build(&pairs, 0).unwrap();
        for b in 0u8..=255 {
            assert_eq!(f.get(&[b, b]), Some(b as u32));
            assert_eq!(f.get(&[b]), None);
        }
        assert_eq!(f.iter().count(), 256);
    }
}
