//! Property-based equivalence: the double-array automaton must agree
//! byte-for-byte with a naive reference over arbitrary key sets.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pae_fst::{Fst, FstView};

/// Reference longest-match: scan every key at `pos`.
fn reference_longest_match(
    keys: &BTreeMap<Vec<u8>, u32>,
    bytes: &[u8],
    pos: usize,
) -> Option<(usize, u32)> {
    let mut best: Option<(usize, u32)> = None;
    for (k, &v) in keys {
        if !k.is_empty()
            && bytes.len() >= pos + k.len()
            && &bytes[pos..pos + k.len()] == k.as_slice()
            && best.map_or(true, |(len, _)| k.len() > len)
        {
            best = Some((k.len(), v));
        }
    }
    best
}

fn keyset_strategy() -> impl Strategy<Value = BTreeMap<Vec<u8>, u32>> {
    proptest::collection::vec("[a-c]{1,5}", 0..12).prop_map(|words| {
        words
            .into_iter()
            .enumerate()
            .map(|(i, w)| (w.into_bytes(), i as u32))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `get` agrees with the map for both members and random probes.
    #[test]
    fn get_matches_reference(keys in keyset_strategy(), probe in "[a-d]{0,6}") {
        let pairs: Vec<(&[u8], u32)> =
            keys.iter().map(|(k, &v)| (k.as_slice(), v)).collect();
        let fst = Fst::build(&pairs, 0).unwrap();
        for (k, &v) in &keys {
            prop_assert_eq!(fst.get(k), Some(v));
        }
        prop_assert_eq!(fst.get(probe.as_bytes()), keys.get(probe.as_bytes()).copied());
    }

    /// `longest_match_at` agrees with the scan-all-keys reference at
    /// every position of a random text.
    #[test]
    fn longest_match_matches_reference(keys in keyset_strategy(), text in "[a-d ]{0,24}") {
        let pairs: Vec<(&[u8], u32)> =
            keys.iter().map(|(k, &v)| (k.as_slice(), v)).collect();
        let fst = Fst::build(&pairs, 0).unwrap();
        let bytes = text.as_bytes();
        for pos in 0..=bytes.len() {
            prop_assert_eq!(
                fst.longest_match_at(bytes, pos),
                reference_longest_match(&keys, bytes, pos),
                "pos {} of {:?}", pos, text
            );
        }
    }

    /// Serialize → reopen from raw bytes is lossless, and iteration
    /// returns exactly the input pairs in key order.
    #[test]
    fn arena_round_trip_and_iteration(keys in keyset_strategy()) {
        let pairs: Vec<(&[u8], u32)> =
            keys.iter().map(|(k, &v)| (k.as_slice(), v)).collect();
        let fst = Fst::build(&pairs, 42).unwrap();
        let reopened = Fst::from_vec(fst.as_bytes().to_vec()).unwrap();
        prop_assert_eq!(&fst, &reopened);
        prop_assert_eq!(reopened.meta(), 42);
        let view = FstView::new(reopened.as_bytes()).unwrap();
        let got: Vec<(Vec<u8>, u32)> = view.iter().collect();
        let want: Vec<(Vec<u8>, u32)> =
            keys.iter().map(|(k, &v)| (k.clone(), v)).collect();
        prop_assert_eq!(got, want);
    }
}
