//! Freeze-then-serve: capturing a trained run as a serveable model.
//!
//! The bootstrap loop is a training procedure — it retrains taggers and
//! word2vec every cycle and needs the whole corpus. Serving must not:
//! a frozen model captures everything extraction needs (tagger
//! parameters, the BIO label space, the veto configuration with rule
//! 3's corpus statistics baked into a blocklist, the semantic cleaner's
//! vectors and cores, the tokenizer lexicon and language) so that
//! `<attribute, value>` triples can be extracted from a single product
//! page, without the corpus, deterministically.
//!
//! [`FrozenModel::freeze`] captures a finished [`BootstrapOutcome`];
//! [`FrozenModel::extractor`] rehydrates it into a [`FrozenExtractor`]
//! whose page pipeline mirrors [`parse_corpus_with`] exactly (title
//! first, then split free text, tables excluded), so frozen extraction
//! over a training page agrees with what the in-loop tagger saw.
//! [`crate::bundle`] gives the frozen model a versioned, byte-stable
//! on-disk form.

use pae_fst::Fst;
use pae_html::{extract_text, parse, TextOptions};
use pae_synth::{Dataset, Language};
use pae_text::{Lexicon, LexiconPosTagger, PosTag, Sentence, SentenceSplitter, Tokenizer};

use crate::bootstrap::BootstrapOutcome;
use crate::cleaning::veto::{per_triple_veto, unpopular_blocklist};
use crate::cleaning::{freeze_semantic, SemanticFreeze};
use crate::config::{PipelineConfig, TaggerKind};
use crate::corpus::{Corpus, PosBackend};
use crate::quality::{PageObservation, ReferenceBuilder, ReferenceStats};
use crate::tagger::{extract_candidates, TrainedTagger};
use crate::trainset::{decode_spans, generate_training_set, LabelSpace};
use crate::types::Triple;

/// Why a run could not be frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreezeError {
    /// The run used the HMM PoS backend, whose silver-trained state is
    /// not captured in a bundle (only the lexicon tagger is).
    HmmPosBackend,
    /// The outcome produced no triples to train a serving tagger on.
    EmptyOutcome,
    /// Tagger training produced no labelled sentences.
    NoTrainingData,
}

impl std::fmt::Display for FreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreezeError::HmmPosBackend => write!(
                f,
                "cannot freeze a run with the HMM PoS backend: only the \
                 lexicon tagger is captured in a bundle"
            ),
            FreezeError::EmptyOutcome => {
                write!(f, "cannot freeze an outcome with no extracted triples")
            }
            FreezeError::NoTrainingData => write!(
                f,
                "cannot freeze: the final triples project onto no corpus sentences"
            ),
        }
    }
}

impl std::error::Error for FreezeError {}

/// A trained tagger in frozen (serializable) form.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenTagger {
    /// Linear-chain CRF: flat parameters + the feature vocabulary in
    /// interning order + the template configuration.
    Crf {
        /// Number of BIO labels.
        n_labels: usize,
        /// Flat parameter vector ([`pae_crf::CrfModel::params`] layout).
        params: Vec<f64>,
        /// Feature names in id order; re-interning them reproduces the
        /// decode-time [`pae_crf::FeatureIndex`] id for id.
        feature_names: Vec<String>,
        /// Feature template window radius.
        window: usize,
        /// Sentence-number feature cap.
        max_sentence_bucket: usize,
    },
    /// Char+word BiLSTM, in [`pae_neural::BiLstmTagger::to_bytes`] form.
    Rnn {
        /// The network's byte codec.
        bytes: Vec<u8>,
    },
    /// Precision-first ensemble: both backends, intersected at decode.
    Ensemble {
        /// The CRF arm.
        crf: Box<FrozenTagger>,
        /// The RNN arm.
        rnn: Box<FrozenTagger>,
    },
}

/// Summary of the pipeline configuration a model was frozen from,
/// echoed into the bundle for provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEcho {
    /// Bootstrap iterations the run used.
    pub iterations: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Tagger backend name (`"crf"`, `"rnn"`, `"ensemble"`).
    pub tagger: String,
}

/// A trained run frozen for serving. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenModel {
    /// Corpus language (selects the serve-time tokenizer).
    pub language: Language,
    /// Segmentation/PoS lexicon.
    pub lexicon: Lexicon,
    /// BIO label space attribute names, sorted.
    pub attrs: Vec<String>,
    /// The serving tagger.
    pub tagger: FrozenTagger,
    /// Whether the per-triple veto rules run at serve time.
    pub use_veto: bool,
    /// Veto rule 4's length bound.
    pub max_value_chars: usize,
    /// Veto rule 3 frozen: `(attr, value)` pairs the popularity ranking
    /// dropped at freeze time, sorted.
    pub veto_blocklist: Vec<(String, String)>,
    /// The semantic cleaner's frozen state (`None` when semantic
    /// cleaning is off or the corpus yielded no word2vec model).
    pub semantic: Option<SemanticFreeze>,
    /// Freeze-time extraction behavior over the training corpus, the
    /// baseline the serving quality monitor scores live traffic
    /// against (`None` for models loaded from pre-v3 bundles).
    pub reference: Option<ReferenceStats>,
    /// Configuration echo for provenance.
    pub config: ConfigEcho,
}

impl FrozenModel {
    /// Freezes a finished run: trains the serving tagger on the final
    /// triples, bakes veto rule 3 into a blocklist, and captures the
    /// semantic cleaner's vectors and cores.
    ///
    /// `config` must be the configuration `outcome` was produced with
    /// and `corpus` the parsed corpus it ran on.
    pub fn freeze(
        dataset: &Dataset,
        corpus: &Corpus,
        outcome: &BootstrapOutcome,
        config: &PipelineConfig,
    ) -> Result<FrozenModel, FreezeError> {
        let _span = pae_obs::span("freeze");
        if config.pos_backend == PosBackend::Hmm {
            return Err(FreezeError::HmmPosBackend);
        }
        let final_triples = outcome.final_triples();
        if final_triples.is_empty() {
            return Err(FreezeError::EmptyOutcome);
        }
        let space = &outcome.label_space;

        // Diversified category-level extras, exactly as the loop builds
        // them — the serving tagger trains on the same labelled slice
        // the last in-loop tagger would have.
        let extra_values: Vec<(String, String)> = outcome
            .diversified
            .attrs()
            .iter()
            .flat_map(|attr| {
                outcome
                    .diversified
                    .values_of(attr)
                    .into_iter()
                    .map(|v| (attr.to_string(), v.to_owned()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let labeled = generate_training_set(corpus, &final_triples, space, &extra_values);
        if labeled.is_empty() {
            return Err(FreezeError::NoTrainingData);
        }

        let freeze_crf = || {
            let tagger = TrainedTagger::train_crf(&labeled, space.n_labels(), &config.crf);
            match tagger {
                TrainedTagger::Crf {
                    model,
                    extractor: _,
                    index,
                } => FrozenTagger::Crf {
                    n_labels: model.n_labels,
                    params: model.params,
                    feature_names: (0..index.len() as u32)
                        .map(|id| index.name_of(id).to_owned())
                        .collect(),
                    window: config.crf.window,
                    max_sentence_bucket: 8,
                },
                TrainedTagger::Rnn { .. } => unreachable!("train_crf returned an RNN"),
            }
        };
        let freeze_rnn = || {
            let tagger = TrainedTagger::train_rnn(&labeled, space.n_labels(), &config.rnn);
            match tagger {
                TrainedTagger::Rnn { model } => FrozenTagger::Rnn {
                    bytes: model.to_bytes(),
                },
                TrainedTagger::Crf { .. } => unreachable!("train_rnn returned a CRF"),
            }
        };
        let (tagger, tagger_name) = match config.tagger {
            TaggerKind::Crf => (freeze_crf(), "crf"),
            TaggerKind::Rnn => (freeze_rnn(), "rnn"),
            TaggerKind::Ensemble => (
                FrozenTagger::Ensemble {
                    crf: Box::new(freeze_crf()),
                    rnn: Box::new(freeze_rnn()),
                },
                "ensemble",
            ),
        };

        // Rule 3's corpus statistics, baked in: decode the freeze corpus
        // with the serving tagger, pool with the accepted triples, and
        // record which pairs the popularity ranking rejects.
        let veto_blocklist = if config.use_veto {
            let runtime = rehydrate_tagger(&tagger).expect("fresh frozen tagger rehydrates");
            let mut pool = final_triples.clone();
            pool.extend(extract_with(&runtime, corpus, space));
            pool.sort_by(|a, b| {
                (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value))
            });
            pool.dedup();
            pool.retain(|t| per_triple_veto(&t.value, config.max_value_chars).is_none());
            unpopular_blocklist(&pool, config.unpopular_keep)
        } else {
            Vec::new()
        };

        let semantic = if config.use_semantic {
            freeze_semantic(
                &final_triples,
                &corpus.word_sentences(),
                &config.semantic,
                config.seed.wrapping_add(config.iterations as u64 + 1),
            )
        } else {
            None
        };

        let mut model = FrozenModel {
            language: dataset.language(),
            lexicon: dataset.lexicon.clone(),
            attrs: space.attrs().to_vec(),
            tagger,
            use_veto: config.use_veto,
            max_value_chars: config.max_value_chars,
            veto_blocklist,
            semantic,
            reference: None,
            config: ConfigEcho {
                iterations: config.iterations,
                seed: config.seed,
                tagger: tagger_name.to_owned(),
            },
        };
        model.reference = Some(compute_reference(&model, dataset));
        Ok(model)
    }

    /// Rehydrates the frozen model into a ready-to-serve extractor.
    ///
    /// Fails (with a message naming the defect) when the frozen tagger
    /// bytes are internally inconsistent — a bundle that passed hash
    /// validation but was built by a future incompatible writer.
    pub fn extractor(&self) -> Result<FrozenExtractor, String> {
        let backend = rehydrate_tagger(&self.tagger)?;
        Ok(assemble_extractor(
            self.language,
            self.lexicon.clone(),
            self.attrs.clone(),
            backend,
            self.use_veto,
            self.max_value_chars,
            Blocklist::Sorted(self.veto_blocklist.clone()),
            self.semantic.clone(),
        ))
    }
}

/// The frozen rule-3 blocklist in serving form.
#[derive(Debug, Clone)]
pub(crate) enum Blocklist {
    /// Sorted `(attr, value)` pairs (the freeze-time form), probed by
    /// binary search.
    Sorted(Vec<(String, String)>),
    /// Zero-copy automaton over `attr ++ 0xFF ++ value` keys, borrowing
    /// a loaded bundle's bytes. `0xFF` never occurs in UTF-8, so the
    /// separator is unambiguous.
    Fst(Fst),
}

/// The composite automaton key for a blocked `(attr, value)` pair.
pub(crate) fn blocklist_key(attr: &str, value: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(attr.len() + value.len() + 1);
    key.extend_from_slice(attr.as_bytes());
    key.push(0xFF);
    key.extend_from_slice(value.as_bytes());
    key
}

impl Blocklist {
    /// True when the pair was rejected by the freeze-time popularity
    /// ranking.
    pub(crate) fn contains(&self, attr: &str, value: &str) -> bool {
        match self {
            Blocklist::Sorted(list) => list
                .binary_search_by(|(a, v)| (a.as_str(), v.as_str()).cmp(&(attr, value)))
                .is_ok(),
            Blocklist::Fst(fst) => fst.get(&blocklist_key(attr, value)).is_some(),
        }
    }
}

/// The serve-time tagger: one backend or the intersected pair.
pub(crate) enum ExtractBackend {
    One(Box<TrainedTagger>),
    Ensemble(Box<TrainedTagger>, Box<TrainedTagger>),
}

/// Assembles a CRF serving tagger from already-loaded parts. Used by
/// both the in-memory rehydration path (interned feature index) and
/// the zero-copy bundle loader (frozen automaton index).
pub(crate) fn crf_tagger_from_parts(
    n_labels: usize,
    params: Vec<f64>,
    index: pae_crf::FeatureIndex,
    window: usize,
    max_sentence_bucket: usize,
) -> Result<TrainedTagger, String> {
    let n_features = index.len();
    let expected = pae_crf::CrfModel::param_len(n_features, n_labels);
    if params.len() != expected {
        return Err(format!(
            "CRF parameter vector has {} entries, expected {expected} \
             for {n_features} features x {n_labels} labels",
            params.len()
        ));
    }
    Ok(TrainedTagger::Crf {
        model: pae_crf::CrfModel {
            n_labels,
            n_features,
            params,
        },
        extractor: pae_crf::FeatureExtractor::new(pae_crf::FeatureTemplates {
            window,
            max_sentence_bucket,
        }),
        index,
    })
}

fn rehydrate_one(frozen: &FrozenTagger) -> Result<TrainedTagger, String> {
    match frozen {
        FrozenTagger::Crf {
            n_labels,
            params,
            feature_names,
            window,
            max_sentence_bucket,
        } => crf_tagger_from_parts(
            *n_labels,
            params.clone(),
            pae_crf::FeatureIndex::from_names(feature_names.iter().map(String::as_str)),
            *window,
            *max_sentence_bucket,
        ),
        FrozenTagger::Rnn { bytes } => Ok(TrainedTagger::Rnn {
            model: pae_neural::BiLstmTagger::from_bytes(bytes)?,
        }),
        FrozenTagger::Ensemble { .. } => Err("nested ensemble".to_owned()),
    }
}

fn rehydrate_tagger(frozen: &FrozenTagger) -> Result<ExtractBackend, String> {
    match frozen {
        FrozenTagger::Ensemble { crf, rnn } => Ok(ExtractBackend::Ensemble(
            Box::new(rehydrate_one(crf)?),
            Box::new(rehydrate_one(rnn)?),
        )),
        one => Ok(ExtractBackend::One(Box::new(rehydrate_one(one)?))),
    }
}

/// Decodes one page's sentences into candidate triples (sorted,
/// deduplicated) with one backend.
fn decode_sentences(
    tagger: &TrainedTagger,
    product: u32,
    sentences: &[Sentence],
    space: &LabelSpace,
) -> Vec<Triple> {
    let mut out = Vec::new();
    for (sent_idx, sentence) in sentences.iter().enumerate() {
        let words: Vec<String> = sentence.words().map(str::to_owned).collect();
        if words.is_empty() {
            continue;
        }
        let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
        let labels = tagger.tag(&words, &pos, sent_idx);
        for (attr, range) in decode_spans(&labels, space) {
            let value = words[range].join(" ");
            out.push(Triple::new(product, space.attrs()[attr].clone(), value));
        }
    }
    out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    out.dedup();
    out
}

/// [`decode_sentences`] with a per-span confidence overlay: identical
/// candidate triples (the labels come from
/// [`TrainedTagger::tag_scored`], which decodes exactly as
/// [`TrainedTagger::tag`]), plus the mean token confidence of each
/// decoded span appended to `confidences` in decode order. Confidence
/// is observational only — it never affects what is extracted.
fn decode_sentences_observed(
    tagger: &TrainedTagger,
    product: u32,
    sentences: &[Sentence],
    space: &LabelSpace,
    confidences: &mut Vec<f64>,
) -> Vec<Triple> {
    let mut out = Vec::new();
    for (sent_idx, sentence) in sentences.iter().enumerate() {
        let words: Vec<String> = sentence.words().map(str::to_owned).collect();
        if words.is_empty() {
            continue;
        }
        let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
        let (labels, scores) = tagger.tag_scored(&words, &pos, sent_idx);
        for (attr, range) in decode_spans(&labels, space) {
            let span = &scores[range.clone()];
            let conf = if span.is_empty() {
                0.0
            } else {
                span.iter().sum::<f64>() / span.len() as f64
            };
            confidences.push(conf);
            let value = words[range].join(" ");
            out.push(Triple::new(product, space.attrs()[attr].clone(), value));
        }
    }
    out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    out.dedup();
    out
}

/// Builds [`ReferenceStats`] for a freshly frozen model by running the
/// instrumented extraction path over the training corpus pages in
/// order. Deterministic: extraction is per-page pure and the fold is
/// commutative counters, so the result is bit-identical at any thread
/// count.
fn compute_reference(model: &FrozenModel, dataset: &Dataset) -> ReferenceStats {
    let _span = pae_obs::span("freeze.reference");
    let extractor = model.extractor().expect("fresh frozen tagger rehydrates");
    let mut builder = ReferenceBuilder::new(extractor.attrs(), &extractor.backend_names());
    let observed = pae_runtime::parallel_map(&dataset.pages, |_, page| {
        extractor.extract_page_observed(page.id, &page.html)
    });
    for (triples, obs) in &observed {
        builder.observe_page(triples, obs);
    }
    builder.finish()
}

/// Corpus-wide extraction with a rehydrated backend (freeze-time rule-3
/// statistics).
fn extract_with(backend: &ExtractBackend, corpus: &Corpus, space: &LabelSpace) -> Vec<Triple> {
    match backend {
        ExtractBackend::One(t) => extract_candidates(t, corpus, space),
        ExtractBackend::Ensemble(a, b) => {
            let xa = extract_candidates(a, corpus, space);
            let xb = extract_candidates(b, corpus, space);
            intersect(xa, &xb)
        }
    }
}

/// Intersection of two sorted, deduplicated triple lists.
fn intersect(a: Vec<Triple>, b: &[Triple]) -> Vec<Triple> {
    let key = |t: &Triple| (t.product, t.attr.clone(), t.value.clone());
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut j = 0;
    for t in a {
        let k = key(&t);
        while j < b.len() && key(&b[j]) < k {
            j += 1;
        }
        if j < b.len() && key(&b[j]) == k {
            out.push(t);
        }
    }
    out
}

/// A rehydrated frozen model, ready to extract triples from product
/// pages. Holds the warm tokenizer/lexicon/tagger state; immutable
/// after construction, so one instance can serve concurrent requests
/// behind an `Arc`.
pub struct FrozenExtractor {
    tokenizer: Box<dyn Tokenizer>,
    pos_tagger: LexiconPosTagger,
    splitter: SentenceSplitter,
    space: LabelSpace,
    backend: ExtractBackend,
    use_veto: bool,
    max_value_chars: usize,
    veto_blocklist: Blocklist,
    semantic: Option<SemanticFreeze>,
}

/// Assembles an extractor from already-loaded parts; the zero-copy
/// bundle loader uses this to skip materializing a [`FrozenModel`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_extractor(
    language: Language,
    lexicon: Lexicon,
    attrs: Vec<String>,
    backend: ExtractBackend,
    use_veto: bool,
    max_value_chars: usize,
    veto_blocklist: Blocklist,
    semantic: Option<SemanticFreeze>,
) -> FrozenExtractor {
    FrozenExtractor {
        tokenizer: language.tokenizer(&lexicon),
        pos_tagger: LexiconPosTagger::new(lexicon),
        splitter: SentenceSplitter::new(),
        space: LabelSpace::new(attrs),
        backend,
        use_veto,
        max_value_chars,
        veto_blocklist,
        semantic,
    }
}

impl FrozenExtractor {
    /// The attribute names this model extracts.
    pub fn attrs(&self) -> &[String] {
        self.space.attrs()
    }

    /// Extracts cleaned triples from one product page's HTML.
    ///
    /// The page pipeline mirrors corpus parsing exactly: `<title>`
    /// content first, then the split free text, dictionary tables
    /// excluded. Candidates then pass the per-triple veto rules, the
    /// frozen rule-3 blocklist, and the frozen semantic filter.
    pub fn extract_page(&self, product: u32, html: &str) -> Vec<Triple> {
        let _span = pae_obs::span("frozen.extract_page");
        let sentences = self.page_sentences(html);
        let candidates = match &self.backend {
            ExtractBackend::One(t) => decode_sentences(t, product, &sentences, &self.space),
            ExtractBackend::Ensemble(a, b) => {
                let xa = decode_sentences(a, product, &sentences, &self.space);
                let xb = decode_sentences(b, product, &sentences, &self.space);
                intersect(xa, &xb)
            }
        };
        candidates.into_iter().filter(|t| self.keeps(t)).collect()
    }

    /// [`extract_page`](Self::extract_page) with a quality-observation
    /// overlay: byte-identical triples (same tokenize → tag → decode →
    /// clean pipeline; the scored tagger decodes exactly as the plain
    /// one), plus token/OOV counts and per-backend span confidences for
    /// the quality monitor. Observation is strictly read-only — nothing
    /// recorded here feeds back into extraction.
    pub fn extract_page_observed(
        &self,
        product: u32,
        html: &str,
    ) -> (Vec<Triple>, PageObservation) {
        let _span = pae_obs::span("frozen.extract_page");
        let sentences = self.page_sentences(html);
        let lexicon = self.pos_tagger.lexicon();
        let mut tokens = 0u64;
        let mut oov_tokens = 0u64;
        for sentence in &sentences {
            for word in sentence.words() {
                tokens += 1;
                if !lexicon.contains(word) {
                    oov_tokens += 1;
                }
            }
        }
        let mut confidences: Vec<Vec<f64>> = Vec::new();
        let candidates = match &self.backend {
            ExtractBackend::One(t) => {
                let mut confs = Vec::new();
                let out =
                    decode_sentences_observed(t, product, &sentences, &self.space, &mut confs);
                confidences.push(confs);
                out
            }
            ExtractBackend::Ensemble(a, b) => {
                let mut ca = Vec::new();
                let mut cb = Vec::new();
                let xa = decode_sentences_observed(a, product, &sentences, &self.space, &mut ca);
                let xb = decode_sentences_observed(b, product, &sentences, &self.space, &mut cb);
                confidences.push(ca);
                confidences.push(cb);
                intersect(xa, &xb)
            }
        };
        let kept: Vec<Triple> = candidates.into_iter().filter(|t| self.keeps(t)).collect();
        (
            kept,
            PageObservation {
                tokens,
                oov_tokens,
                confidences,
            },
        )
    }

    /// The backend names, in the order
    /// [`PageObservation::confidences`] reports them (the CRF arm
    /// first for ensembles).
    pub fn backend_names(&self) -> Vec<&'static str> {
        fn name(t: &TrainedTagger) -> &'static str {
            match t {
                TrainedTagger::Crf { .. } => "crf",
                TrainedTagger::Rnn { .. } => "rnn",
            }
        }
        match &self.backend {
            ExtractBackend::One(t) => vec![name(t)],
            ExtractBackend::Ensemble(a, b) => vec![name(a), name(b)],
        }
    }

    /// The page pipeline shared by the plain and observed extraction
    /// paths: `<title>` content first, then the split free text,
    /// dictionary tables excluded (mirrors corpus parsing exactly).
    fn page_sentences(&self, html: &str) -> Vec<Sentence> {
        let forest = parse(html);
        let mut sentences = Vec::new();
        for title in pae_html::dom::find_all(&forest, "title") {
            let t = title.text_content();
            if !t.is_empty() {
                sentences.push(Sentence::analyze(
                    &t,
                    self.tokenizer.as_ref(),
                    &self.pos_tagger,
                ));
            }
        }
        let text = extract_text(&forest, &TextOptions::default());
        for raw in self.splitter.split(&text) {
            let s = Sentence::analyze(&raw, self.tokenizer.as_ref(), &self.pos_tagger);
            if !s.is_empty() {
                sentences.push(s);
            }
        }
        sentences
    }

    /// Extracts from many pages concurrently on the [`pae_runtime`]
    /// worker pool. Pages are independent, so the output is the
    /// concatenation of [`extract_page`](Self::extract_page) results in
    /// input order, at any thread count.
    pub fn extract_pages(&self, pages: &[(u32, String)]) -> Vec<Triple> {
        let per_page =
            pae_runtime::parallel_map(pages, |_, (id, html)| self.extract_page(*id, html));
        per_page.into_iter().flatten().collect()
    }

    /// Batch variant of
    /// [`extract_page_observed`](Self::extract_page_observed): per-page
    /// `(triples, observation)` pairs in input order. Concatenating the
    /// triples reproduces [`extract_pages`](Self::extract_pages)
    /// byte for byte.
    pub fn extract_pages_observed(
        &self,
        pages: &[(u32, String)],
    ) -> Vec<(Vec<Triple>, PageObservation)> {
        pae_runtime::parallel_map(pages, |_, (id, html)| self.extract_page_observed(*id, html))
    }

    /// The frozen cleaning decision for one candidate triple.
    fn keeps(&self, t: &Triple) -> bool {
        if self.use_veto {
            if per_triple_veto(&t.value, self.max_value_chars).is_some() {
                return false;
            }
            if self.veto_blocklist.contains(&t.attr, &t.value) {
                return false;
            }
        }
        match &self.semantic {
            Some(s) => s.keeps(&t.attr, &t.value),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapPipeline;
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, DatasetSpec};

    fn quick_config() -> PipelineConfig {
        let mut cfg = PipelineConfig {
            iterations: 1,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        cfg
    }

    fn frozen_fixture() -> (Dataset, Corpus, FrozenModel) {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = parse_corpus(&dataset);
        let cfg = quick_config();
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
        (dataset, corpus, model)
    }

    #[test]
    fn freeze_and_extract_training_pages() {
        let (dataset, _, model) = frozen_fixture();
        assert!(!model.attrs.is_empty());
        assert_eq!(model.config.tagger, "crf");
        let extractor = model.extractor().expect("rehydrate");
        let mut n_total = 0usize;
        for page in dataset.pages.iter().take(20) {
            let triples = extractor.extract_page(page.id, &page.html);
            for t in &triples {
                assert_eq!(t.product, page.id);
                assert!(model.attrs.contains(&t.attr), "unknown attr {t:?}");
            }
            n_total += triples.len();
        }
        assert!(n_total > 0, "frozen extractor found nothing");
    }

    #[test]
    fn frozen_extraction_is_deterministic_across_thread_counts() {
        let (dataset, _, model) = frozen_fixture();
        let extractor = model.extractor().unwrap();
        let pages: Vec<(u32, String)> = dataset
            .pages
            .iter()
            .take(16)
            .map(|p| (p.id, p.html.clone()))
            .collect();
        let one = pae_runtime::with_jobs(1, || extractor.extract_pages(&pages));
        let four = pae_runtime::with_jobs(4, || extractor.extract_pages(&pages));
        assert_eq!(one, four);
        assert!(!one.is_empty());
    }

    #[test]
    fn observed_extraction_is_byte_identical_to_plain() {
        let (dataset, _, model) = frozen_fixture();
        let extractor = model.extractor().unwrap();
        assert_eq!(extractor.backend_names(), vec!["crf"]);
        let mut any_confidence = false;
        for page in dataset.pages.iter().take(12) {
            let plain = extractor.extract_page(page.id, &page.html);
            let (observed, obs) = extractor.extract_page_observed(page.id, &page.html);
            assert_eq!(plain, observed, "observation changed extraction");
            assert!(obs.tokens >= obs.oov_tokens);
            assert!(obs.tokens > 0);
            assert_eq!(obs.confidences.len(), 1);
            for &c in &obs.confidences[0] {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&c),
                    "confidence {c} out of range"
                );
                any_confidence = true;
            }
        }
        assert!(any_confidence, "no spans decoded on any page");
    }

    #[test]
    fn freeze_embeds_reference_stats() {
        let (dataset, _, model) = frozen_fixture();
        let reference = model.reference.as_ref().expect("freeze computes reference");
        assert_eq!(reference.pages, dataset.pages.len() as u64);
        assert!(reference.total_triples > 0, "reference saw no extractions");
        assert_eq!(reference.attrs.len(), model.attrs.len());
        assert!(reference.tokens > 0);
        assert!(reference.oov_tokens <= reference.tokens);
        assert_eq!(reference.backends.len(), 1);
        assert_eq!(reference.backends[0].backend, "crf");
        assert!(reference.backends[0].confidence.iter().sum::<u64>() > 0);
        let busiest = reference
            .attrs
            .iter()
            .max_by_key(|a| a.triples)
            .expect("attrs nonempty");
        assert!(!busiest.top_values.is_empty());
        assert_eq!(
            busiest.value_len.iter().sum::<u64>(),
            busiest.triples,
            "length histogram must cover every triple"
        );
    }

    #[test]
    fn hmm_backend_refuses_to_freeze() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(40)
            .generate();
        let mut cfg = quick_config();
        cfg.pos_backend = PosBackend::Hmm;
        let corpus = crate::corpus::parse_corpus_with(&dataset, PosBackend::Hmm);
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let err = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).unwrap_err();
        assert_eq!(err, FreezeError::HmmPosBackend);
        assert!(err.to_string().contains("HMM"));
    }

    #[test]
    fn rnn_and_ensemble_backends_freeze() {
        let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 7)
            .products(40)
            .generate();
        let corpus = parse_corpus(&dataset);
        for kind in [TaggerKind::Rnn, TaggerKind::Ensemble] {
            let mut cfg = quick_config();
            cfg.tagger = kind;
            let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
            let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
            let extractor = model.extractor().expect("rehydrate");
            // Must at least run without error on a page.
            let _ = extractor.extract_page(dataset.pages[0].id, &dataset.pages[0].html);
        }
    }

    #[test]
    fn corrupt_frozen_crf_is_rejected() {
        let (_, _, mut model) = frozen_fixture();
        if let FrozenTagger::Crf { params, .. } = &mut model.tagger {
            params.pop();
        } else {
            panic!("expected CRF");
        }
        let err = match model.extractor() {
            Ok(_) => panic!("corrupt CRF was accepted"),
            Err(e) => e,
        };
        assert!(err.contains("parameter vector"), "{err}");
    }
}
