//! Semantic cleaning (§V-C): word2vec-based drift control.
//!
//! Per bootstrap iteration: (i) group multiword values into single
//! tokens, (ii) train word2vec on the (regrouped) corpus, (iii) build a
//! per-attribute *semantic core* by iteratively discarding the value
//! with the lowest multiplicative cosine similarity to the rest, and
//! (iv) remove candidate triples whose value is semantically distant
//! from the core.

use std::collections::{BTreeSet, HashMap, HashSet};

use pae_embed::{group_phrases, multiplicative_similarity, W2vConfig, W2vModel};

use crate::config::SemanticOptions;
use crate::types::Triple;

/// Removal statistics for the reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SemanticCleanStats {
    /// Triples removed as semantically distant.
    pub removed: usize,
    /// Distinct values that had no embedding (kept unscored).
    pub unscored_values: usize,
    /// Values evicted while shrinking per-attribute cores to
    /// `core_size` (summed over attributes).
    pub evictions: usize,
}

/// Per-attribute semantic drift of the accepted values relative to a
/// baseline value set.
///
/// The score is `1 − cosine(centroid(accepted), centroid(baseline))`,
/// both centroids taken over mean-centered vectors in *this*
/// iteration's word2vec space (so the baseline is re-embedded every
/// cycle and the comparison is apples-to-apples). 0 means the accepted
/// values still point where the baseline pointed; larger values mean
/// the attribute's accepted vocabulary is moving away from it.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDrift {
    /// Attribute name.
    pub attr: String,
    /// Cosine distance between the accepted and baseline centroids
    /// (0 = aligned, up to 2 = opposite).
    pub score: f64,
    /// Accepted values that had an embedding this iteration.
    pub n_values: usize,
    /// Baseline values that had an embedding this iteration.
    pub n_baseline: usize,
}

/// The per-attribute value sets that [`AttrDrift`] is measured against
/// — normally the iteration-0 seed triples, frozen before the loop.
#[derive(Debug, Clone, Default)]
pub struct DriftBaseline {
    values_per_attr: HashMap<String, BTreeSet<String>>,
}

impl DriftBaseline {
    /// Collects per-attribute value sets (spaces become underscores,
    /// matching the phrase-grouped corpus tokens).
    pub fn from_triples(triples: &[Triple]) -> DriftBaseline {
        let mut values_per_attr: HashMap<String, BTreeSet<String>> = HashMap::new();
        for t in triples {
            values_per_attr
                .entry(t.attr.clone())
                .or_default()
                .insert(t.value.replace(' ', "_"));
        }
        DriftBaseline { values_per_attr }
    }

    /// True when no baseline values were collected.
    pub fn is_empty(&self) -> bool {
        self.values_per_attr.is_empty()
    }
}

/// One value's semantic-cleaning verdict for the provenance trail.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticDecision {
    /// Attribute name.
    pub attr: String,
    /// Value in its original (spaced) form.
    pub value: String,
    /// Multiplicative cosine similarity to the attribute's semantic
    /// core; `None` when the value had no embedding or no core was
    /// formed (too few embedded values / no word2vec evidence).
    pub similarity: Option<f64>,
    /// Whether the value is itself a member of the core.
    pub in_core: bool,
    /// Whether the value survived the pass.
    pub kept: bool,
}

/// Runs semantic cleaning over candidate triples.
///
/// `sentences` is the iteration's corpus (plain word lists); the
/// word2vec model is retrained here every call, as the paper requires
/// (newly discovered entities have no pre-trained vectors).
pub fn semantic_clean(
    triples: Vec<Triple>,
    sentences: &[Vec<String>],
    options: &SemanticOptions,
    seed: u64,
) -> (Vec<Triple>, SemanticCleanStats) {
    let (survivors, stats, _) =
        semantic_clean_with_baseline(triples, sentences, options, seed, None);
    (survivors, stats)
}

/// As [`semantic_clean`], additionally scoring per-attribute drift of
/// the surviving values against `baseline` (see [`AttrDrift`]).
///
/// Drift is measured strictly *after* the keep decisions and feeds
/// nothing back into them, so passing a baseline cannot change which
/// triples survive — the determinism suite relies on this.
pub fn semantic_clean_with_baseline(
    triples: Vec<Triple>,
    sentences: &[Vec<String>],
    options: &SemanticOptions,
    seed: u64,
    baseline: Option<&DriftBaseline>,
) -> (Vec<Triple>, SemanticCleanStats, Vec<AttrDrift>) {
    let (survivors, stats, drift, _) =
        clean_impl(triples, sentences, options, seed, baseline, false);
    (survivors, stats, drift)
}

/// As [`semantic_clean_with_baseline`], additionally returning one
/// [`SemanticDecision`] per distinct `(attr, value)` pair in the input,
/// sorted by `(attr, value)`.
///
/// Survivors, stats and drift are byte-identical to the untraced
/// variants' — similarity is computed read-only on top of the same
/// keep decisions (including for core members, whose keep decision
/// never consults it).
pub fn semantic_clean_traced(
    triples: Vec<Triple>,
    sentences: &[Vec<String>],
    options: &SemanticOptions,
    seed: u64,
    baseline: Option<&DriftBaseline>,
) -> (
    Vec<Triple>,
    SemanticCleanStats,
    Vec<AttrDrift>,
    Vec<SemanticDecision>,
) {
    clean_impl(triples, sentences, options, seed, baseline, true)
}

/// Verdict per underscored value: (similarity, in_core, kept).
type VerdictMap = HashMap<(String, String), (Option<f64>, bool, bool)>;

/// Turns the per-underscored-value verdicts into the sorted decision
/// list over the original (spaced) input pairs.
fn decisions_for(
    pairs: &BTreeSet<(String, String)>,
    verdicts: &VerdictMap,
) -> Vec<SemanticDecision> {
    pairs
        .iter()
        .map(|(attr, value)| {
            let key = (attr.clone(), value.replace(' ', "_"));
            let (similarity, in_core, kept) =
                verdicts.get(&key).copied().unwrap_or((None, false, true));
            SemanticDecision {
                attr: attr.clone(),
                value: value.clone(),
                similarity,
                in_core,
                kept,
            }
        })
        .collect()
}

fn clean_impl(
    triples: Vec<Triple>,
    sentences: &[Vec<String>],
    options: &SemanticOptions,
    seed: u64,
    baseline: Option<&DriftBaseline>,
    trace: bool,
) -> (
    Vec<Triple>,
    SemanticCleanStats,
    Vec<AttrDrift>,
    Vec<SemanticDecision>,
) {
    let mut stats = SemanticCleanStats::default();
    if triples.is_empty() {
        return (triples, stats, Vec::new(), Vec::new());
    }
    // Distinct input pairs, original spelling — the decision list's
    // domain. Only materialized when tracing.
    let input_pairs: BTreeSet<(String, String)> = if trace {
        triples
            .iter()
            .map(|t| (t.attr.clone(), t.value.clone()))
            .collect()
    } else {
        BTreeSet::new()
    };
    let mut verdicts: VerdictMap = VerdictMap::new();

    // (i) group multiword values into single tokens.
    let phrases: Vec<Vec<String>> = triples
        .iter()
        .map(|t| t.value_tokens().iter().map(|s| s.to_string()).collect())
        .filter(|p: &Vec<String>| p.len() >= 2)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    let grouped = group_phrases(sentences, &phrases);

    // (ii) train word2vec on the regrouped corpus.
    let config = W2vConfig {
        dim: options.dim,
        epochs: options.epochs,
        min_count: options.min_count,
        seed,
        ..Default::default()
    };
    let Some(model) = W2vModel::train(&grouped, &config) else {
        // No semantic evidence at all: everything is kept, unscored.
        let decisions = decisions_for(&input_pairs, &verdicts);
        return (triples, stats, Vec::new(), decisions);
    };

    // Values per attribute, as single tokens.
    let mut values_per_attr: HashMap<&str, HashSet<String>> = HashMap::new();
    for t in &triples {
        values_per_attr
            .entry(t.attr.as_str())
            .or_default()
            .insert(t.value.replace(' ', "_"));
    }

    // Mean-center the value vectors: SGNS embeddings are anisotropic
    // (all vectors share a large common component, especially on small
    // domain corpora), which would make every cosine ~1 and the drift
    // filter blind. Removing the common component across all candidate
    // values restores contrast between attribute clusters.
    let mut all_names: Vec<&str> = values_per_attr
        .values()
        .flatten()
        .map(String::as_str)
        .collect();
    all_names.sort_unstable();
    all_names.dedup();
    let mut mean = vec![0.0f32; options.dim];
    let mut n_embedded = 0usize;
    for name in &all_names {
        if let Some(v) = model.vector(name) {
            for (m, x) in mean.iter_mut().zip(v) {
                *m += x;
            }
            n_embedded += 1;
        }
    }
    if n_embedded > 0 {
        for m in mean.iter_mut() {
            *m /= n_embedded as f32;
        }
    }
    let centered: HashMap<&str, Vec<f32>> = all_names
        .iter()
        .filter_map(|&name| {
            model
                .vector(name)
                .map(|v| (name, v.iter().zip(&mean).map(|(x, m)| x - m).collect()))
        })
        .collect();

    // (iii) core per attribute + (iv) keep decision per value.
    let mut keep: HashMap<(String, String), bool> = HashMap::new();
    for (attr, values) in &values_per_attr {
        let mut embedded: Vec<(&str, &[f32])> = values
            .iter()
            .filter_map(|v| {
                centered
                    .get(v.as_str())
                    .map(|vec| (v.as_str(), vec.as_slice()))
            })
            .collect();
        embedded.sort_by_key(|(v, _)| *v);
        let missing = values.len() - embedded.len();
        stats.unscored_values += missing;

        if embedded.len() < 3 {
            // Too little evidence to form a core: keep everything.
            for v in values {
                keep.insert((attr.to_string(), v.clone()), true);
            }
            continue;
        }

        let core = build_core(&embedded, options.core_size);
        stats.evictions += embedded.len() - core.len();
        let core_vecs: Vec<&[f32]> = core.iter().map(|&i| embedded[i].1).collect();
        let core_names: HashSet<&str> = core.iter().map(|&i| embedded[i].0).collect();

        for (name, vec) in &embedded {
            let ok = core_names.contains(name)
                || multiplicative_similarity(vec, &core_vecs) >= options.keep_threshold;
            keep.insert((attr.to_string(), name.to_string()), ok);
            if trace {
                // Similarity is also reported for core members — it is
                // read-only here and never feeds the keep decision.
                let similarity = multiplicative_similarity(vec, &core_vecs) as f64;
                verdicts.insert(
                    (attr.to_string(), name.to_string()),
                    (Some(similarity), core_names.contains(name), ok),
                );
            }
        }
        // Unembedded values: no evidence against them — keep.
        for v in values {
            keep.entry((attr.to_string(), v.clone())).or_insert(true);
        }
    }

    let before = triples.len();
    let survivors: Vec<Triple> = triples
        .into_iter()
        .filter(|t| {
            keep.get(&(t.attr.clone(), t.value.replace(' ', "_")))
                .copied()
                .unwrap_or(true)
        })
        .collect();
    stats.removed = before - survivors.len();

    // Drift scoring: read-only over the survivors and the already-built
    // model/mean, so it cannot perturb the keep decisions above.
    let drift = match baseline {
        Some(b) if !b.is_empty() => compute_drift(&survivors, b, &model, &mean),
        _ => Vec::new(),
    };

    if pae_obs::enabled() {
        pae_obs::counter_add("semantic.removed", &[], stats.removed as u64);
        pae_obs::counter_add("semantic.evictions", &[], stats.evictions as u64);
        pae_obs::counter_add(
            "semantic.unscored_values",
            &[],
            stats.unscored_values as u64,
        );
    }
    let decisions = decisions_for(&input_pairs, &verdicts);
    (survivors, stats, drift, decisions)
}

/// The semantic cleaner's state frozen for serving: the word2vec
/// vectors, the anisotropy-correction mean, and each attribute's
/// semantic core, captured once at freeze time so serve-time extraction
/// can replay the keep decision without retraining word2vec.
///
/// Vectors are stored raw (uncentered); [`SemanticFreeze::keeps`]
/// subtracts `mean` on the fly, mirroring `clean_impl`. Values with no
/// frozen vector — including every value first seen at serve time —
/// are kept: semantic cleaning only vetoes on positive evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticFreeze {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Mean vector over the freeze-time candidate values (the common
    /// anisotropic component; subtracted before every similarity).
    pub mean: Vec<f32>,
    /// `(word, raw vector)` for the full word2vec vocabulary, sorted by
    /// word. Multiword values appear underscored, as in the grouped
    /// training corpus.
    pub vectors: Vec<(String, Vec<f32>)>,
    /// `(attr, core member values)` sorted by attr; members sorted.
    pub cores: Vec<(String, Vec<String>)>,
    /// Minimum multiplicative similarity to the core to survive.
    pub keep_threshold: f32,
}

impl SemanticFreeze {
    /// Raw (uncentered) frozen vector for `word`, if any.
    fn vector(&self, word: &str) -> Option<&[f32]> {
        self.vectors
            .binary_search_by(|(w, _)| w.as_str().cmp(word))
            .ok()
            .map(|i| self.vectors[i].1.as_slice())
    }

    /// Replays the freeze-time keep decision for one `(attr, value)`
    /// pair (`value` in its original spaced form). Core members and
    /// values without evidence (no frozen core for the attribute, or no
    /// embedding for the value) are kept.
    pub fn keeps(&self, attr: &str, value: &str) -> bool {
        let Ok(core_idx) = self.cores.binary_search_by(|(a, _)| a.as_str().cmp(attr)) else {
            return true;
        };
        let token = value.replace(' ', "_");
        let (_, core) = &self.cores[core_idx];
        if core.iter().any(|m| m == &token) {
            return true;
        }
        let Some(raw) = self.vector(&token) else {
            return true;
        };
        let centered: Vec<f32> = raw.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        let core_vecs: Vec<Vec<f32>> = core
            .iter()
            .filter_map(|m| self.vector(m))
            .map(|v| v.iter().zip(&self.mean).map(|(x, m)| x - m).collect())
            .collect();
        let refs: Vec<&[f32]> = core_vecs.iter().map(Vec::as_slice).collect();
        if refs.is_empty() {
            return true;
        }
        multiplicative_similarity(&centered, &refs) >= self.keep_threshold
    }
}

/// Captures the semantic cleaner's state for a frozen model: trains
/// word2vec on the (phrase-grouped) corpus exactly as [`semantic_clean`]
/// does, computes the candidate-value mean and per-attribute cores over
/// `triples`, and packages everything as a [`SemanticFreeze`].
///
/// Returns `None` when the corpus yields no word2vec model (no semantic
/// evidence — serve-time cleaning degrades to keep-everything, matching
/// the in-loop behaviour).
pub fn freeze_semantic(
    triples: &[Triple],
    sentences: &[Vec<String>],
    options: &SemanticOptions,
    seed: u64,
) -> Option<SemanticFreeze> {
    if triples.is_empty() {
        return None;
    }
    let phrases: Vec<Vec<String>> = triples
        .iter()
        .map(|t| t.value_tokens().iter().map(|s| s.to_string()).collect())
        .filter(|p: &Vec<String>| p.len() >= 2)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    let grouped = group_phrases(sentences, &phrases);
    let config = W2vConfig {
        dim: options.dim,
        epochs: options.epochs,
        min_count: options.min_count,
        seed,
        ..Default::default()
    };
    let model = W2vModel::train(&grouped, &config)?;

    let mut values_per_attr: HashMap<&str, BTreeSet<String>> = HashMap::new();
    for t in triples {
        values_per_attr
            .entry(t.attr.as_str())
            .or_default()
            .insert(t.value.replace(' ', "_"));
    }
    // The same candidate-value mean clean_impl computes.
    let mut all_names: Vec<&str> = values_per_attr
        .values()
        .flatten()
        .map(String::as_str)
        .collect();
    all_names.sort_unstable();
    all_names.dedup();
    let mut mean = vec![0.0f32; options.dim];
    let mut n_embedded = 0usize;
    for name in &all_names {
        if let Some(v) = model.vector(name) {
            for (m, x) in mean.iter_mut().zip(v) {
                *m += x;
            }
            n_embedded += 1;
        }
    }
    if n_embedded > 0 {
        for m in mean.iter_mut() {
            *m /= n_embedded as f32;
        }
    }
    let centered: HashMap<&str, Vec<f32>> = all_names
        .iter()
        .filter_map(|&name| {
            model
                .vector(name)
                .map(|v| (name, v.iter().zip(&mean).map(|(x, m)| x - m).collect()))
        })
        .collect();

    let mut cores: Vec<(String, Vec<String>)> = Vec::new();
    for (attr, values) in &values_per_attr {
        let mut embedded: Vec<(&str, &[f32])> = values
            .iter()
            .filter_map(|v| {
                centered
                    .get(v.as_str())
                    .map(|vec| (v.as_str(), vec.as_slice()))
            })
            .collect();
        embedded.sort_by_key(|(v, _)| *v);
        if embedded.len() < 3 {
            // Too little evidence for a core: the attribute keeps
            // everything at serve time, same as in-loop.
            continue;
        }
        let core = build_core(&embedded, options.core_size);
        let mut members: Vec<String> = core.iter().map(|&i| embedded[i].0.to_owned()).collect();
        members.sort_unstable();
        cores.push((attr.to_string(), members));
    }
    cores.sort();

    Some(SemanticFreeze {
        dim: options.dim,
        mean,
        vectors: model
            .entries()
            .into_iter()
            .map(|(w, v)| (w.to_owned(), v.to_vec()))
            .collect(),
        cores,
        keep_threshold: options.keep_threshold,
    })
}

/// Mean-centered centroid (in f64) of the embeddable `values`, plus how
/// many of them were embeddable.
fn centroid<'a, I: Iterator<Item = &'a String>>(
    values: I,
    model: &W2vModel,
    mean: &[f32],
) -> (Vec<f64>, usize) {
    let mut sum = vec![0.0f64; mean.len()];
    let mut n = 0usize;
    for v in values {
        if let Some(vec) = model.vector(v) {
            for ((s, x), m) in sum.iter_mut().zip(vec).zip(mean) {
                *s += (x - m) as f64;
            }
            n += 1;
        }
    }
    if n > 0 {
        for s in sum.iter_mut() {
            *s /= n as f64;
        }
    }
    (sum, n)
}

/// Cosine similarity; `None` when either vector has zero norm.
fn cosine(a: &[f64], b: &[f64]) -> Option<f64> {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        None
    } else {
        Some(dot / (na * nb))
    }
}

/// Scores each surviving attribute against the baseline value set.
/// Attributes absent from the baseline, and attributes where either
/// side has no embeddable value, are skipped (drift is undefined there,
/// not zero). Output is sorted by attribute name.
fn compute_drift(
    survivors: &[Triple],
    baseline: &DriftBaseline,
    model: &W2vModel,
    mean: &[f32],
) -> Vec<AttrDrift> {
    let mut accepted: HashMap<&str, BTreeSet<String>> = HashMap::new();
    for t in survivors {
        accepted
            .entry(t.attr.as_str())
            .or_default()
            .insert(t.value.replace(' ', "_"));
    }
    let mut attrs: Vec<&str> = accepted.keys().copied().collect();
    attrs.sort_unstable();
    let mut out = Vec::new();
    for attr in attrs {
        let Some(base_values) = baseline.values_per_attr.get(attr) else {
            continue;
        };
        let (cur, n_cur) = centroid(accepted[attr].iter(), model, mean);
        let (base, n_base) = centroid(base_values.iter(), model, mean);
        if n_cur == 0 || n_base == 0 {
            continue;
        }
        let Some(cos) = cosine(&cur, &base) else {
            continue;
        };
        out.push(AttrDrift {
            attr: attr.to_string(),
            score: 1.0 - cos,
            n_values: n_cur,
            n_baseline: n_base,
        });
    }
    out
}

/// Builds the core as index set into `embedded`: iteratively discard
/// the value with the lowest multiplicative similarity to the rest
/// until `core_size` remain (`None` keeps everything).
///
/// Each eviction round scores the surviving values concurrently on the
/// [`pae_runtime`] worker pool (this is the O(n²)-per-eviction hot
/// spot); the argmin scan stays sequential with a strict `<` so the
/// first minimum wins and the eviction order is independent of the
/// thread count.
fn build_core(embedded: &[(&str, &[f32])], core_size: Option<usize>) -> Vec<usize> {
    let target = core_size.unwrap_or(embedded.len()).max(2);
    let mut alive: Vec<usize> = (0..embedded.len()).collect();
    while alive.len() > target {
        let scores = pae_runtime::parallel_map(&alive, |_, &i| {
            let rest: Vec<&[f32]> = alive
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| embedded[j].1)
                .collect();
            multiplicative_similarity(embedded[i].1, &rest)
        });
        let mut worst = 0;
        let mut worst_score = f32::INFINITY;
        for (pos, &score) in scores.iter().enumerate() {
            if score < worst_score {
                worst_score = score;
                worst = pos;
            }
        }
        alive.remove(worst);
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus where color words share contexts and digits share
    /// different contexts.
    fn corpus() -> Vec<Vec<String>> {
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        let mut out = Vec::new();
        for round in 0..150 {
            let c = ["aka", "ao", "kiiro", "momo"][round % 4];
            let d = ["2", "3", "4", "5"][round % 4];
            out.push(mk(&format!("iro ha {c} kaban kirei")));
            out.push(mk(&format!("kaban iro {c} subarashii")));
            out.push(mk(&format!("omosa no {d} kg omoi")));
            out.push(mk(&format!("hako de {d} kg gurai")));
        }
        out
    }

    fn options() -> SemanticOptions {
        SemanticOptions {
            core_size: Some(3),
            keep_threshold: 0.55,
            dim: 16,
            epochs: 25,
            min_count: 2,
        }
    }

    #[test]
    fn drifted_value_is_removed() {
        // Candidate color values include a weight-context intruder.
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(1, "iro", "ao"),
            Triple::new(2, "iro", "kiiro"),
            Triple::new(3, "iro", "momo"),
            Triple::new(4, "iro", "kg"), // drift: unit word
        ];
        let (out, stats) = semantic_clean(triples, &corpus(), &options(), 7);
        assert!(
            out.iter().all(|t| t.value != "kg"),
            "drifted value kept: {out:?}"
        );
        assert!(stats.removed >= 1);
        // The legitimate colors survive.
        assert!(out.iter().any(|t| t.value == "aka"));
        assert!(out.len() >= 3);
    }

    #[test]
    fn multiword_values_are_grouped_and_scored() {
        let mut sentences = corpus();
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        for round in 0..40 {
            let c = ["aka", "ao"][round % 2];
            sentences.push(mk(&format!("iro : fuka {c} kaban desu")));
        }
        let triples = vec![
            Triple::new(0, "iro", "fuka aka"),
            Triple::new(1, "iro", "fuka ao"),
            Triple::new(2, "iro", "aka"),
            Triple::new(3, "iro", "ao"),
        ];
        let (out, stats) = semantic_clean(triples, &sentences, &options(), 7);
        // Grouping must have produced embeddings for the multiword
        // values (otherwise they would count as unscored) …
        assert_eq!(stats.unscored_values, 0, "{out:?}");
        // … and at least one grouped multiword value survives the core
        // (with `core_size: 3` over four embedded values, exactly which
        // value is evicted depends on the word2vec RNG stream).
        assert!(out.iter().any(|t| t.value.starts_with("fuka ")), "{out:?}");
    }

    #[test]
    fn tiny_attribute_sets_are_kept() {
        let triples = vec![Triple::new(0, "rare", "aka"), Triple::new(1, "rare", "kg")];
        let (out, stats) = semantic_clean(triples.clone(), &corpus(), &options(), 7);
        assert_eq!(out.len(), triples.len());
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn empty_inputs() {
        let (out, stats) = semantic_clean(Vec::new(), &corpus(), &options(), 7);
        assert!(out.is_empty());
        assert_eq!(stats.removed, 0);
        let (out, _) = semantic_clean(vec![Triple::new(0, "a", "x")], &[], &options(), 7);
        assert_eq!(out.len(), 1, "no corpus → keep everything");
    }

    #[test]
    fn drift_is_zero_against_self_and_larger_against_intruders() {
        let colors = ["aka", "ao", "kiiro", "momo"];
        let triples: Vec<Triple> = colors
            .iter()
            .enumerate()
            .map(|(i, v)| Triple::new(i as u32, "iro", *v))
            .collect();
        let mut opts = options();
        opts.core_size = None; // keep everything: survivors == baseline

        // Baseline == accepted values → centroids coincide → drift ~0.
        let baseline = DriftBaseline::from_triples(&triples);
        let (_, _, drift) =
            semantic_clean_with_baseline(triples.clone(), &corpus(), &opts, 7, Some(&baseline));
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].attr, "iro");
        assert!(drift[0].score.abs() < 1e-9, "self-drift {}", drift[0].score);
        assert_eq!(drift[0].n_values, 4);
        assert_eq!(drift[0].n_baseline, 4);

        // A weight-context baseline is far from the color survivors.
        let far = DriftBaseline::from_triples(&[
            Triple::new(0, "iro", "2"),
            Triple::new(1, "iro", "3"),
            Triple::new(2, "iro", "kg"),
        ]);
        let (_, _, drifted) =
            semantic_clean_with_baseline(triples, &corpus(), &opts, 7, Some(&far));
        assert_eq!(drifted.len(), 1);
        assert!(
            drifted[0].score > drift[0].score + 0.05,
            "drift against foreign baseline ({}) not above self-drift ({})",
            drifted[0].score,
            drift[0].score
        );
    }

    #[test]
    fn drift_skips_unknown_attributes_and_none_baseline() {
        let triples = vec![Triple::new(0, "iro", "aka"), Triple::new(1, "iro", "ao")];
        // No baseline → no drift rows.
        let (_, _, drift) =
            semantic_clean_with_baseline(triples.clone(), &corpus(), &options(), 7, None);
        assert!(drift.is_empty());
        // Baseline covering a different attribute → skipped, not zero.
        let other = DriftBaseline::from_triples(&[Triple::new(0, "omosa", "2")]);
        let (_, _, drift) =
            semantic_clean_with_baseline(triples, &corpus(), &options(), 7, Some(&other));
        assert!(drift.is_empty(), "{drift:?}");
    }

    #[test]
    fn baseline_does_not_change_keep_decisions() {
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(1, "iro", "ao"),
            Triple::new(2, "iro", "kiiro"),
            Triple::new(3, "iro", "momo"),
            Triple::new(4, "iro", "kg"),
        ];
        let (plain, plain_stats) = semantic_clean(triples.clone(), &corpus(), &options(), 7);
        let baseline = DriftBaseline::from_triples(&triples);
        let (with_baseline, stats, _) =
            semantic_clean_with_baseline(triples, &corpus(), &options(), 7, Some(&baseline));
        assert_eq!(plain, with_baseline);
        assert_eq!(plain_stats, stats);
    }

    #[test]
    fn traced_clean_matches_untraced_and_scores_every_pair() {
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(1, "iro", "ao"),
            Triple::new(2, "iro", "kiiro"),
            Triple::new(3, "iro", "momo"),
            Triple::new(4, "iro", "kg"),
        ];
        let (plain, plain_stats) = semantic_clean(triples.clone(), &corpus(), &options(), 7);
        let (traced, stats, _, decisions) =
            semantic_clean_traced(triples.clone(), &corpus(), &options(), 7, None);
        assert_eq!(plain, traced);
        assert_eq!(plain_stats, stats);

        // One decision per distinct input pair, sorted by (attr, value).
        assert_eq!(decisions.len(), 5, "{decisions:?}");
        let keys: Vec<_> = decisions
            .iter()
            .map(|d| (d.attr.clone(), d.value.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);

        let survivors: std::collections::HashSet<_> =
            traced.iter().map(|t| t.value.as_str()).collect();
        for d in &decisions {
            assert_eq!(d.kept, survivors.contains(d.value.as_str()), "{d:?}");
            assert!(d.similarity.is_some(), "embedded value unscored: {d:?}");
            if d.in_core {
                assert!(d.kept, "core member must be kept: {d:?}");
            }
        }
        assert!(decisions.iter().any(|d| d.in_core));
        let dropped = decisions.iter().find(|d| d.value == "kg").unwrap();
        assert!(!dropped.kept && !dropped.in_core);
    }

    #[test]
    fn traced_clean_keeps_everything_unscored_without_corpus() {
        let triples = vec![Triple::new(0, "a", "fuka aka"), Triple::new(1, "a", "x")];
        let (out, _, _, decisions) = semantic_clean_traced(triples, &[], &options(), 7, None);
        assert_eq!(out.len(), 2);
        assert_eq!(decisions.len(), 2);
        assert!(decisions
            .iter()
            .all(|d| d.kept && d.similarity.is_none() && !d.in_core));
        // Original (spaced) spelling is preserved in the trail.
        assert!(decisions.iter().any(|d| d.value == "fuka aka"));
    }

    #[test]
    fn frozen_semantic_replays_in_loop_keep_decisions() {
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(1, "iro", "ao"),
            Triple::new(2, "iro", "kiiro"),
            Triple::new(3, "iro", "momo"),
            Triple::new(4, "iro", "kg"),
        ];
        let (survivors, _) = semantic_clean(triples.clone(), &corpus(), &options(), 7);
        let frozen = freeze_semantic(&triples, &corpus(), &options(), 7).expect("model");
        for t in &triples {
            let kept_in_loop = survivors.contains(t);
            assert_eq!(
                frozen.keeps(&t.attr, &t.value),
                kept_in_loop,
                "disagreement on {t:?}"
            );
        }
        // The drifted value must actually be vetoed both ways.
        assert!(!frozen.keeps("iro", "kg"));
        // Unknown attributes and unseen values are kept (no evidence).
        assert!(frozen.keeps("nonexistent", "aka"));
        assert!(frozen.keeps("iro", "totally fresh value"));
    }

    #[test]
    fn frozen_semantic_is_deterministic_and_sorted() {
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(1, "iro", "ao"),
            Triple::new(2, "iro", "kiiro"),
            Triple::new(3, "iro", "momo"),
        ];
        let a = freeze_semantic(&triples, &corpus(), &options(), 7).unwrap();
        let b = freeze_semantic(&triples, &corpus(), &options(), 7).unwrap();
        assert_eq!(a, b);
        let mut words: Vec<&str> = a.vectors.iter().map(|(w, _)| w.as_str()).collect();
        let sorted = {
            let mut s = words.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(words, sorted);
        words.dedup();
        assert_eq!(words.len(), a.vectors.len(), "duplicate vocab entries");
        assert!(freeze_semantic(&[], &corpus(), &options(), 7).is_none());
        assert!(freeze_semantic(&triples, &[], &options(), 7).is_none());
    }

    #[test]
    fn no_core_restriction_keeps_more() {
        let triples: Vec<Triple> = ["aka", "ao", "kiiro", "momo"]
            .iter()
            .enumerate()
            .map(|(i, v)| Triple::new(i as u32, "iro", *v))
            .collect();
        let mut opts = options();
        opts.core_size = None;
        let (out, _) = semantic_clean(triples.clone(), &corpus(), &opts, 7);
        assert_eq!(out.len(), triples.len());
    }
}
