//! Cleaning (§V-C): syntactic veto rules and semantic-drift control.

pub mod semantic;
pub mod veto;

pub use semantic::{
    freeze_semantic, semantic_clean, semantic_clean_traced, semantic_clean_with_baseline,
    AttrDrift, DriftBaseline, SemanticCleanStats, SemanticDecision, SemanticFreeze,
};
pub use veto::{
    apply_veto, apply_veto_traced, per_triple_veto, unpopular_blocklist, VetoDecision, VetoStats,
};
