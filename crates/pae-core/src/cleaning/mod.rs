//! Cleaning (§V-C): syntactic veto rules and semantic-drift control.

pub mod semantic;
pub mod veto;

pub use semantic::{
    semantic_clean, semantic_clean_traced, semantic_clean_with_baseline, AttrDrift, DriftBaseline,
    SemanticCleanStats, SemanticDecision,
};
pub use veto::{apply_veto, apply_veto_traced, VetoDecision, VetoStats};
