//! The four syntactic veto rules (§V-C):
//!
//! 1. **symbols** — 1-gram entities that are symbols (`;`, `*`, …);
//! 2. **mark-up tags** — values containing markup fragments;
//! 3. **unpopular entities** — per attribute, entities ranked by the
//!    number of tagged items; only the top 80 % are kept;
//! 4. **long values** — values exceeding 30 characters.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::types::Triple;

/// What the veto pass removed (for the experiment reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VetoStats {
    /// Removed by rule 1 (symbol unigrams).
    pub symbols: usize,
    /// Removed by rule 2 (markup).
    pub markup: usize,
    /// Removed by rule 3 (unpopular tail).
    pub unpopular: usize,
    /// Removed by rule 4 (overlong values).
    pub long: usize,
}

impl VetoStats {
    /// Total vetoed triples.
    pub fn total(&self) -> usize {
        self.symbols + self.markup + self.unpopular + self.long
    }
}

/// One veto rule's verdict on one distinct `(attr, value)` pair, for
/// the provenance trail. Only *fires* (`dropped = true`) and
/// *near-misses* (the rule almost fired) are recorded — pairs a rule
/// never came close to are silent.
///
/// `measure` is the rule's own gauge: the symbol-character fraction
/// (rule 1), `1.0` for markup (rule 2), the popularity-rank fraction
/// within the attribute (rule 3, smaller = more popular), or
/// `chars / max_chars` (rule 4).
#[derive(Debug, Clone, PartialEq)]
pub struct VetoDecision {
    /// Attribute name.
    pub attr: String,
    /// Value string.
    pub value: String,
    /// Rule name: `"symbols"`, `"markup"`, `"unpopular"` or `"long"`.
    pub rule: &'static str,
    /// Whether the rule removed the pair (false = near-miss).
    pub dropped: bool,
    /// Rule-specific gauge (documented on the struct).
    pub measure: f64,
}

/// Decision accumulator keyed for deterministic output order.
type DecisionMap = BTreeMap<(String, String, &'static str), (bool, f64)>;

/// Markup-ish tokens that cannot appear inside a legitimate value.
fn is_markup_token(tok: &str) -> bool {
    tok.starts_with('<')
        || tok.ends_with('>')
        || matches!(tok, "<" | ">" | "&" | "\"" | "*" | "br" | "nbsp")
}

/// True for a single-token value that is pure symbols/punctuation.
fn is_symbol_unigram(value: &str) -> bool {
    !value.contains(' ') && !value.is_empty() && value.chars().all(|c| !c.is_alphanumeric())
}

/// Applies the four rules; returns survivors and removal statistics.
///
/// `keep_fraction` is rule 3's retention rate (the paper's 0.8) and
/// `max_chars` rule 4's length bound (the paper's 30).
pub fn apply_veto(
    triples: Vec<Triple>,
    keep_fraction: f64,
    max_chars: usize,
) -> (Vec<Triple>, VetoStats) {
    let (survivors, stats, _) = veto_impl(triples, keep_fraction, max_chars, false);
    (survivors, stats)
}

/// [`apply_veto`] plus the per-pair [`VetoDecision`] trail (fires and
/// near-misses only), sorted by `(attr, value, rule)`.
///
/// Survivors and stats are byte-identical to [`apply_veto`]'s on the
/// same input — the trail is a read-only overlay.
pub fn apply_veto_traced(
    triples: Vec<Triple>,
    keep_fraction: f64,
    max_chars: usize,
) -> (Vec<Triple>, VetoStats, Vec<VetoDecision>) {
    veto_impl(triples, keep_fraction, max_chars, true)
}

/// The per-triple portion of the veto pass: rules 1 (symbol unigram),
/// 2 (markup) and 4 (overlong), applied to a single value in the same
/// order as [`apply_veto`]. Returns the name of the first rule that
/// fires, or `None` when the value survives all three.
///
/// Rule 3 (unpopularity) is corpus-statistical and cannot be evaluated
/// on one triple — frozen serving replays it from a blocklist computed
/// at freeze time (see [`unpopular_blocklist`]).
pub fn per_triple_veto(value: &str, max_chars: usize) -> Option<&'static str> {
    if is_symbol_unigram(value) {
        Some("symbols")
    } else if value.split(' ').any(is_markup_token) {
        Some("markup")
    } else if value.chars().count() > max_chars {
        Some("long")
    } else {
        None
    }
}

/// Rule 3 as a frozen artifact: ranks each attribute's entities by the
/// number of distinct tagged products (exactly as [`apply_veto`] does)
/// and returns the `(attr, value)` pairs that fall outside the top
/// `keep_fraction`, sorted. A frozen model carries this list so
/// serve-time extraction can veto the known unpopular tail without the
/// corpus statistics.
pub fn unpopular_blocklist(triples: &[Triple], keep_fraction: f64) -> Vec<(String, String)> {
    let mut items_per_entity: HashMap<(&str, &str), HashSet<u32>> = HashMap::new();
    for t in triples {
        items_per_entity
            .entry((t.attr.as_str(), t.value.as_str()))
            .or_default()
            .insert(t.product);
    }
    let mut per_attr: HashMap<&str, Vec<(&str, usize)>> = HashMap::new();
    for ((attr, value), items) in &items_per_entity {
        per_attr.entry(attr).or_default().push((value, items.len()));
    }
    let mut dropped: Vec<(String, String)> = Vec::new();
    for (attr, mut entities) in per_attr {
        entities.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let total = entities.len();
        let keep = ((total as f64 * keep_fraction).ceil() as usize).max(1);
        for (value, _) in entities.into_iter().skip(keep) {
            dropped.push((attr.to_owned(), value.to_owned()));
        }
    }
    dropped.sort();
    dropped
}

fn veto_impl(
    triples: Vec<Triple>,
    keep_fraction: f64,
    max_chars: usize,
    trace: bool,
) -> (Vec<Triple>, VetoStats, Vec<VetoDecision>) {
    let mut stats = VetoStats::default();
    let mut decisions: DecisionMap = BTreeMap::new();

    // Rules 1, 2, 4 are per-triple.
    let mut survivors: Vec<Triple> = Vec::with_capacity(triples.len());
    for t in triples {
        if is_symbol_unigram(&t.value) {
            stats.symbols += 1;
            if trace {
                decisions.insert((t.attr, t.value, "symbols"), (true, 1.0));
            }
        } else if t.value.split(' ').any(is_markup_token) {
            stats.markup += 1;
            if trace {
                decisions.insert((t.attr, t.value, "markup"), (true, 1.0));
            }
        } else if t.value.chars().count() > max_chars {
            stats.long += 1;
            if trace {
                let measure = t.value.chars().count() as f64 / max_chars.max(1) as f64;
                decisions.insert((t.attr, t.value, "long"), (true, measure));
            }
        } else {
            if trace {
                // Near-misses: a single token that is half symbols, or
                // a value in the top fifth below the length bound.
                if !t.value.contains(' ') && !t.value.is_empty() {
                    let total = t.value.chars().count();
                    let symbols = t.value.chars().filter(|c| !c.is_alphanumeric()).count();
                    if symbols * 2 >= total {
                        let measure = symbols as f64 / total as f64;
                        decisions
                            .entry((t.attr.clone(), t.value.clone(), "symbols"))
                            .or_insert((false, measure));
                    }
                }
                let chars = t.value.chars().count();
                if chars * 5 > max_chars * 4 {
                    let measure = chars as f64 / max_chars.max(1) as f64;
                    decisions
                        .entry((t.attr.clone(), t.value.clone(), "long"))
                        .or_insert((false, measure));
                }
            }
            survivors.push(t);
        }
    }

    // Rule 3: per attribute, rank entities by the number of distinct
    // items tagged with them; keep the top `keep_fraction`.
    let mut items_per_entity: HashMap<(&str, &str), HashSet<u32>> = HashMap::new();
    for t in &survivors {
        items_per_entity
            .entry((t.attr.as_str(), t.value.as_str()))
            .or_default()
            .insert(t.product);
    }
    let mut per_attr: HashMap<&str, Vec<(&str, usize)>> = HashMap::new();
    for ((attr, value), items) in &items_per_entity {
        per_attr.entry(attr).or_default().push((value, items.len()));
    }
    let mut kept: HashSet<(String, String)> = HashSet::new();
    let mut unpopular: Vec<((String, String), (bool, f64))> = Vec::new();
    for (attr, mut entities) in per_attr {
        entities.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let total = entities.len();
        let keep = ((total as f64 * keep_fraction).ceil() as usize).max(1);
        for (pos, (value, _)) in entities.into_iter().enumerate() {
            let dropped = pos >= keep;
            if !dropped {
                kept.insert((attr.to_owned(), value.to_owned()));
            }
            if trace {
                let rank_fraction = (pos + 1) as f64 / total as f64;
                // Near-miss: kept, but in the bottom tenth of the kept
                // slots (only meaningful with a few entities ranked).
                let near_miss = !dropped && keep >= 3 && (pos + 1) * 10 > keep * 9;
                if dropped || near_miss {
                    unpopular.push((
                        (attr.to_owned(), value.to_owned()),
                        (dropped, rank_fraction),
                    ));
                }
            }
        }
    }
    for ((attr, value), verdict) in unpopular {
        decisions.insert((attr, value, "unpopular"), verdict);
    }
    let before = survivors.len();
    let survivors: Vec<Triple> = survivors
        .into_iter()
        .filter(|t| kept.contains(&(t.attr.clone(), t.value.clone())))
        .collect();
    stats.unpopular = before - survivors.len();

    if pae_obs::enabled() {
        pae_obs::counter_add("veto.dropped", &[("rule", "symbols")], stats.symbols as u64);
        pae_obs::counter_add("veto.dropped", &[("rule", "markup")], stats.markup as u64);
        pae_obs::counter_add(
            "veto.dropped",
            &[("rule", "unpopular")],
            stats.unpopular as u64,
        );
        pae_obs::counter_add("veto.dropped", &[("rule", "too_long")], stats.long as u64);
        pae_obs::counter_add("veto.kept", &[], survivors.len() as u64);
    }

    let decisions = decisions
        .into_iter()
        .map(|((attr, value, rule), (dropped, measure))| VetoDecision {
            attr,
            value,
            rule,
            dropped,
            measure,
        })
        .collect();
    (survivors, stats, decisions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(product: u32, attr: &str, value: &str) -> Triple {
        Triple::new(product, attr, value)
    }

    #[test]
    fn symbol_unigrams_vetoed() {
        let (out, stats) = apply_veto(
            vec![t(0, "a", ";"), t(1, "a", "*"), t(2, "a", "aka")],
            1.0,
            30,
        );
        assert_eq!(stats.symbols, 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, "aka");
    }

    #[test]
    fn decimal_values_are_not_symbol_vetoed() {
        // "2 . 5 kg" contains the '.' token but is multi-token.
        let (out, stats) = apply_veto(vec![t(0, "w", "2 . 5 kg")], 1.0, 30);
        assert_eq!(stats.symbols, 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn markup_vetoed() {
        let (out, stats) = apply_veto(
            vec![
                t(0, "a", "aka * ao"),
                t(1, "a", "<b> aka"),
                t(2, "a", "aka"),
            ],
            1.0,
            30,
        );
        assert_eq!(stats.markup, 2);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn long_values_vetoed() {
        let long = "a".repeat(31);
        let (out, stats) = apply_veto(vec![t(0, "a", &long), t(1, "a", "ok")], 1.0, 30);
        assert_eq!(stats.long, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unpopular_tail_vetoed() {
        // 5 entities; entity popularity 5,4,3,2,1 items. keep 80% → 4.
        let mut triples = Vec::new();
        for (i, value) in ["v1", "v2", "v3", "v4", "v5"].iter().enumerate() {
            for p in 0..(5 - i) {
                triples.push(t(p as u32, "a", value));
            }
        }
        let (out, stats) = apply_veto(triples, 0.8, 30);
        assert_eq!(stats.unpopular, 1, "{stats:?}");
        assert!(out.iter().all(|tr| tr.value != "v5"));
    }

    #[test]
    fn keep_at_least_one_entity() {
        let (out, _) = apply_veto(vec![t(0, "a", "only")], 0.1, 30);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = apply_veto(Vec::new(), 0.8, 30);
        assert!(out.is_empty());
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn traced_veto_matches_untraced_and_records_fires() {
        let long = "a".repeat(31);
        let near_long = "b".repeat(27); // > 0.8 * 30, <= 30
        let triples = vec![
            t(0, "a", ";"),
            t(1, "a", "<b> aka"),
            t(2, "a", &long),
            t(3, "a", &near_long),
            t(4, "a", "aka"),
        ];
        let (plain, plain_stats) = apply_veto(triples.clone(), 1.0, 30);
        let (traced, traced_stats, decisions) = apply_veto_traced(triples, 1.0, 30);
        assert_eq!(plain, traced);
        assert_eq!(plain_stats, traced_stats);

        let find = |value: &str, rule: &str| {
            decisions
                .iter()
                .find(|d| d.value == value && d.rule == rule)
                .unwrap_or_else(|| panic!("no decision for {value}/{rule}: {decisions:?}"))
        };
        assert!(find(";", "symbols").dropped);
        assert!(find("<b> aka", "markup").dropped);
        let hit = find(&long, "long");
        assert!(hit.dropped && hit.measure > 1.0);
        let near = find(&near_long, "long");
        assert!(!near.dropped && near.measure > 0.8 && near.measure <= 1.0);
        assert!(
            !decisions.iter().any(|d| d.value == "aka"),
            "clean value must stay silent: {decisions:?}"
        );
        // Sorted by (attr, value, rule).
        let keys: Vec<_> = decisions
            .iter()
            .map(|d| (d.attr.clone(), d.value.clone(), d.rule))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn per_triple_veto_agrees_with_apply_veto() {
        let long = "a".repeat(31);
        let values = [
            ";",
            "*",
            "2 . 5 kg",
            "<b> aka",
            "aka * ao",
            long.as_str(),
            "aka",
            "ok",
        ];
        for value in values {
            let (out, _) = apply_veto(vec![t(0, "a", value)], 1.0, 30);
            let fired = per_triple_veto(value, 30);
            assert_eq!(
                out.is_empty(),
                fired.is_some(),
                "disagreement on {value:?}: {fired:?}"
            );
        }
        assert_eq!(per_triple_veto(";", 30), Some("symbols"));
        assert_eq!(per_triple_veto("<b> aka", 30), Some("markup"));
        assert_eq!(per_triple_veto(&long, 30), Some("long"));
        assert_eq!(per_triple_veto("aka", 30), None);
    }

    #[test]
    fn unpopular_blocklist_matches_rule_three() {
        // Same fixture as `unpopular_tail_vetoed`: keep 80% of 5 → v5.
        let mut triples = Vec::new();
        for (i, value) in ["v1", "v2", "v3", "v4", "v5"].iter().enumerate() {
            for p in 0..(5 - i) {
                triples.push(t(p as u32, "a", value));
            }
        }
        let blocklist = unpopular_blocklist(&triples, 0.8);
        assert_eq!(blocklist, vec![("a".to_owned(), "v5".to_owned())]);
        let (out, _) = apply_veto(triples, 0.8, 30);
        for t in &out {
            assert!(!blocklist.contains(&(t.attr.clone(), t.value.clone())));
        }
        assert!(unpopular_blocklist(&[], 0.8).is_empty());
    }

    #[test]
    fn traced_veto_records_unpopular_rank_fractions() {
        // 5 entities, popularity 5..1, keep 80% → v5 dropped, v4 is the
        // bottom kept slot (near-miss).
        let mut triples = Vec::new();
        for (i, value) in ["v1", "v2", "v3", "v4", "v5"].iter().enumerate() {
            for p in 0..(5 - i) {
                triples.push(t(p as u32, "a", value));
            }
        }
        let (_, stats, decisions) = apply_veto_traced(triples, 0.8, 30);
        assert_eq!(stats.unpopular, 1);
        let unpopular: Vec<_> = decisions.iter().filter(|d| d.rule == "unpopular").collect();
        assert_eq!(unpopular.len(), 2, "{unpopular:?}");
        assert_eq!(unpopular[0].value, "v4");
        assert!(!unpopular[0].dropped);
        assert_eq!(unpopular[1].value, "v5");
        assert!(unpopular[1].dropped);
        assert!((unpopular[1].measure - 1.0).abs() < 1e-12);
    }
}
