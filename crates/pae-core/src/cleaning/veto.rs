//! The four syntactic veto rules (§V-C):
//!
//! 1. **symbols** — 1-gram entities that are symbols (`;`, `*`, …);
//! 2. **mark-up tags** — values containing markup fragments;
//! 3. **unpopular entities** — per attribute, entities ranked by the
//!    number of tagged items; only the top 80 % are kept;
//! 4. **long values** — values exceeding 30 characters.

use std::collections::{HashMap, HashSet};

use crate::types::Triple;

/// What the veto pass removed (for the experiment reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VetoStats {
    /// Removed by rule 1 (symbol unigrams).
    pub symbols: usize,
    /// Removed by rule 2 (markup).
    pub markup: usize,
    /// Removed by rule 3 (unpopular tail).
    pub unpopular: usize,
    /// Removed by rule 4 (overlong values).
    pub long: usize,
}

impl VetoStats {
    /// Total vetoed triples.
    pub fn total(&self) -> usize {
        self.symbols + self.markup + self.unpopular + self.long
    }
}

/// Markup-ish tokens that cannot appear inside a legitimate value.
fn is_markup_token(tok: &str) -> bool {
    tok.starts_with('<')
        || tok.ends_with('>')
        || matches!(tok, "<" | ">" | "&" | "\"" | "*" | "br" | "nbsp")
}

/// True for a single-token value that is pure symbols/punctuation.
fn is_symbol_unigram(value: &str) -> bool {
    !value.contains(' ') && !value.is_empty() && value.chars().all(|c| !c.is_alphanumeric())
}

/// Applies the four rules; returns survivors and removal statistics.
///
/// `keep_fraction` is rule 3's retention rate (the paper's 0.8) and
/// `max_chars` rule 4's length bound (the paper's 30).
pub fn apply_veto(
    triples: Vec<Triple>,
    keep_fraction: f64,
    max_chars: usize,
) -> (Vec<Triple>, VetoStats) {
    let mut stats = VetoStats::default();

    // Rules 1, 2, 4 are per-triple.
    let mut survivors: Vec<Triple> = Vec::with_capacity(triples.len());
    for t in triples {
        if is_symbol_unigram(&t.value) {
            stats.symbols += 1;
        } else if t.value.split(' ').any(is_markup_token) {
            stats.markup += 1;
        } else if t.value.chars().count() > max_chars {
            stats.long += 1;
        } else {
            survivors.push(t);
        }
    }

    // Rule 3: per attribute, rank entities by the number of distinct
    // items tagged with them; keep the top `keep_fraction`.
    let mut items_per_entity: HashMap<(&str, &str), HashSet<u32>> = HashMap::new();
    for t in &survivors {
        items_per_entity
            .entry((t.attr.as_str(), t.value.as_str()))
            .or_default()
            .insert(t.product);
    }
    let mut per_attr: HashMap<&str, Vec<(&str, usize)>> = HashMap::new();
    for ((attr, value), items) in &items_per_entity {
        per_attr.entry(attr).or_default().push((value, items.len()));
    }
    let mut kept: HashSet<(String, String)> = HashSet::new();
    for (attr, mut entities) in per_attr {
        entities.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let keep = ((entities.len() as f64 * keep_fraction).ceil() as usize).max(1);
        for (value, _) in entities.into_iter().take(keep) {
            kept.insert((attr.to_owned(), value.to_owned()));
        }
    }
    let before = survivors.len();
    let survivors: Vec<Triple> = survivors
        .into_iter()
        .filter(|t| kept.contains(&(t.attr.clone(), t.value.clone())))
        .collect();
    stats.unpopular = before - survivors.len();

    if pae_obs::enabled() {
        pae_obs::counter_add("veto.dropped", &[("rule", "symbols")], stats.symbols as u64);
        pae_obs::counter_add("veto.dropped", &[("rule", "markup")], stats.markup as u64);
        pae_obs::counter_add(
            "veto.dropped",
            &[("rule", "unpopular")],
            stats.unpopular as u64,
        );
        pae_obs::counter_add("veto.dropped", &[("rule", "too_long")], stats.long as u64);
        pae_obs::counter_add("veto.kept", &[], survivors.len() as u64);
    }

    (survivors, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(product: u32, attr: &str, value: &str) -> Triple {
        Triple::new(product, attr, value)
    }

    #[test]
    fn symbol_unigrams_vetoed() {
        let (out, stats) = apply_veto(
            vec![t(0, "a", ";"), t(1, "a", "*"), t(2, "a", "aka")],
            1.0,
            30,
        );
        assert_eq!(stats.symbols, 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, "aka");
    }

    #[test]
    fn decimal_values_are_not_symbol_vetoed() {
        // "2 . 5 kg" contains the '.' token but is multi-token.
        let (out, stats) = apply_veto(vec![t(0, "w", "2 . 5 kg")], 1.0, 30);
        assert_eq!(stats.symbols, 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn markup_vetoed() {
        let (out, stats) = apply_veto(
            vec![
                t(0, "a", "aka * ao"),
                t(1, "a", "<b> aka"),
                t(2, "a", "aka"),
            ],
            1.0,
            30,
        );
        assert_eq!(stats.markup, 2);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn long_values_vetoed() {
        let long = "a".repeat(31);
        let (out, stats) = apply_veto(vec![t(0, "a", &long), t(1, "a", "ok")], 1.0, 30);
        assert_eq!(stats.long, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unpopular_tail_vetoed() {
        // 5 entities; entity popularity 5,4,3,2,1 items. keep 80% → 4.
        let mut triples = Vec::new();
        for (i, value) in ["v1", "v2", "v3", "v4", "v5"].iter().enumerate() {
            for p in 0..(5 - i) {
                triples.push(t(p as u32, "a", value));
            }
        }
        let (out, stats) = apply_veto(triples, 0.8, 30);
        assert_eq!(stats.unpopular, 1, "{stats:?}");
        assert!(out.iter().all(|tr| tr.value != "v5"));
    }

    #[test]
    fn keep_at_least_one_entity() {
        let (out, _) = apply_veto(vec![t(0, "a", "only")], 0.1, 30);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = apply_veto(Vec::new(), 0.8, 30);
        assert!(out.is_empty());
        assert_eq!(stats.total(), 0);
    }
}
