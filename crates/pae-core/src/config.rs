//! Pipeline configuration: every knob the paper ablates.

use crate::corpus::PosBackend;
use crate::diversify::DiversifyConfig;
use crate::seed::{AggregationConfig, ValueCleanConfig};

/// Which ML backend tags candidate triples (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaggerKind {
    /// Linear-chain CRF, L-BFGS with L1+L2 (the paper's default pick).
    Crf,
    /// Char+word BiLSTM (NeuroNER-style RNN).
    Rnn,
    /// Precision-first ensemble (the paper's future-work direction:
    /// *"improving the machine learning model by combining different
    /// approaches"*): train both backends and keep only the triples
    /// both extract.
    Ensemble,
}

/// CRF hyperparameters.
#[derive(Debug, Clone)]
pub struct CrfOptions {
    /// L1 coefficient.
    pub l1: f64,
    /// L2 coefficient.
    pub l2: f64,
    /// Maximum L-BFGS iterations.
    pub max_iters: usize,
    /// Feature window radius K.
    pub window: usize,
    /// Minimum number of occurrences for a feature to be kept
    /// (CRFsuite's `minfreq`; 1 disables pruning). Pruning shrinks the
    /// parameter vector — useful at `PAE_SCALE=full`.
    pub min_feature_freq: usize,
}

impl Default for CrfOptions {
    fn default() -> Self {
        CrfOptions {
            l1: 0.05,
            l2: 0.05,
            max_iters: 60,
            window: 2,
            min_feature_freq: 1,
        }
    }
}

/// BiLSTM hyperparameters surfaced by the evaluation (2 vs 10 epochs).
#[derive(Debug, Clone)]
pub struct RnnOptions {
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Word-level embedding and hidden size.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RnnOptions {
    fn default() -> Self {
        RnnOptions {
            epochs: 2,
            learning_rate: 0.15,
            hidden: 24,
            seed: 17,
        }
    }
}

/// Semantic-cleaning parameters (§V-C).
#[derive(Debug, Clone)]
pub struct SemanticOptions {
    /// Core-set size `n`; `None` disables the core restriction (the
    /// §VIII-B parameter exploration found this barely matters).
    pub core_size: Option<usize>,
    /// Minimum multiplicative similarity to the core to survive.
    pub keep_threshold: f32,
    /// word2vec dimensionality.
    pub dim: usize,
    /// word2vec epochs per bootstrap iteration.
    pub epochs: usize,
    /// Minimum corpus frequency for a token to get an embedding
    /// (word2vec's `min-count`). Rarer values stay unscored and are
    /// kept — semantic cleaning only vetoes on positive evidence.
    pub min_count: u64,
}

impl Default for SemanticOptions {
    fn default() -> Self {
        SemanticOptions {
            core_size: Some(10),
            keep_threshold: 0.52,
            dim: 24,
            epochs: 2,
            min_count: 2,
        }
    }
}

/// Full pipeline configuration (Figure 1 + §VI).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Bootstrap iterations N (the paper stops at 5).
    pub iterations: usize,
    /// Tagger backend.
    pub tagger: TaggerKind,
    /// CRF options (used when `tagger == Crf`).
    pub crf: CrfOptions,
    /// RNN options (used when `tagger == Rnn`).
    pub rnn: RnnOptions,
    /// Apply the four syntactic veto rules.
    pub use_veto: bool,
    /// Apply word2vec semantic cleaning.
    pub use_semantic: bool,
    /// Apply seed value diversification.
    pub use_diversification: bool,
    /// Semantic-cleaning parameters.
    pub semantic: SemanticOptions,
    /// Seed value-cleaning parameters.
    pub value_clean: ValueCleanConfig,
    /// Attribute-aggregation parameters.
    pub aggregation: AggregationConfig,
    /// Diversification parameters.
    pub diversify: DiversifyConfig,
    /// PoS tagger backend for corpus analysis.
    pub pos_backend: PosBackend,
    /// Veto rule (iv): maximum value length in characters.
    pub max_value_chars: usize,
    /// Veto rule (iii): fraction of entities kept per attribute.
    pub unpopular_keep: f64,
    /// Maximum number of attribute clusters in the BIO label space:
    /// the highest-mass clusters are kept, the tail is dropped. Label
    /// count drives the CRF parameter dimension and the per-position
    /// Viterbi cost, so this caps tagger cost on wide categories.
    pub label_space_cap: usize,
    /// Stop early when a cycle adds fewer than this many new triples
    /// (`0` disables; the paper simply fixes five iterations, but its
    /// §V describes the loop as running "until a stopping criterion is
    /// met").
    pub stop_when_gain_below: usize,
    /// Master RNG seed for the stochastic components.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            iterations: 5,
            tagger: TaggerKind::Crf,
            crf: CrfOptions::default(),
            rnn: RnnOptions::default(),
            use_veto: true,
            use_semantic: true,
            use_diversification: true,
            semantic: SemanticOptions::default(),
            value_clean: ValueCleanConfig::default(),
            aggregation: AggregationConfig::default(),
            diversify: DiversifyConfig::default(),
            pos_backend: PosBackend::Lexicon,
            max_value_chars: 30,
            unpopular_keep: 0.8,
            label_space_cap: 12,
            stop_when_gain_below: 0,
            seed: 1,
        }
    }
}

impl PipelineConfig {
    /// The paper's "no cleaning" ablation (veto + semantic off).
    pub fn without_cleaning(mut self) -> Self {
        self.use_veto = false;
        self.use_semantic = false;
        self
    }

    /// The paper's `-sem` ablation.
    pub fn without_semantic(mut self) -> Self {
        self.use_semantic = false;
        self
    }

    /// The paper's `-div` ablation.
    pub fn without_diversification(mut self) -> Self {
        self.use_diversification = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = PipelineConfig::default();
        assert_eq!(c.iterations, 5);
        assert_eq!(c.tagger, TaggerKind::Crf);
        assert!(c.use_veto && c.use_semantic && c.use_diversification);
        assert_eq!(c.max_value_chars, 30);
        assert!((c.unpopular_keep - 0.8).abs() < 1e-12);
        assert_eq!(c.rnn.epochs, 2);
        assert_eq!(c.label_space_cap, 12);
        assert_eq!(c.semantic.min_count, 2);
    }

    #[test]
    fn ablation_builders() {
        let c = PipelineConfig::default().without_cleaning();
        assert!(!c.use_veto && !c.use_semantic);
        let c = PipelineConfig::default().without_semantic();
        assert!(c.use_veto && !c.use_semantic);
        let c = PipelineConfig::default().without_diversification();
        assert!(!c.use_diversification);
    }
}
