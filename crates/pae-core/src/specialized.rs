//! Specialized per-attribute-subset models (§VIII-D).
//!
//! A single global model tags every attribute; specialized models tag
//! only a subset, which the paper shows can raise that subset's
//! coverage by orders of magnitude — at a precision cost when
//! confusable attributes are separated from their disambiguating
//! siblings (power supply type vs type).

use pae_synth::Dataset;

use crate::bootstrap::{train_and_extract, BootstrapOutcome};
use crate::config::PipelineConfig;
use crate::corpus::Corpus;
use crate::eval::{evaluate_triples, EvalReport};
use crate::types::Triple;

/// Extraction result of one specialized model.
#[derive(Debug)]
pub struct SpecializedRun {
    /// The attribute clusters the model was restricted to.
    pub attrs: Vec<String>,
    /// Extracted triples (subset attributes only).
    pub triples: Vec<Triple>,
}

impl SpecializedRun {
    /// Evaluates the specialized extraction.
    pub fn evaluate(&self, dataset: &Dataset) -> EvalReport {
        evaluate_triples(&self.triples, &dataset.truth)
    }
}

/// Trains a model restricted to `subset` (cluster names) using the
/// outcome's final triples as training data, then extracts.
pub fn run_specialized(
    corpus: &Corpus,
    outcome: &BootstrapOutcome,
    subset: &[&str],
    cfg: &PipelineConfig,
) -> SpecializedRun {
    let space = outcome.label_space.restrict(subset);
    let triples = outcome.final_triples();
    let extra: Vec<(String, String)> = outcome
        .diversified
        .attrs()
        .iter()
        .filter(|a| subset.contains(a))
        .flat_map(|attr| {
            outcome
                .diversified
                .values_of(attr)
                .into_iter()
                .map(|v| (attr.to_string(), v.to_owned()))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut extracted = train_and_extract(corpus, &triples, &extra, &space, cfg);
    // The system's output is cumulative: the specialized tagger replaces
    // the tagging step, not the seed/bootstrap history, so the subset's
    // already-known triples stay in.
    extracted.extend(
        triples
            .iter()
            .filter(|t| subset.contains(&t.attr.as_str()))
            .cloned(),
    );
    extracted.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    extracted.dedup();
    SpecializedRun {
        attrs: space.attrs().to_vec(),
        triples: extracted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapPipeline;
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, DatasetSpec};

    #[test]
    fn specialized_model_extracts_subset_only() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            ..Default::default()
        };
        cfg.crf.max_iters = 30;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);

        // Restrict to the two largest clusters.
        let attrs = outcome.label_space.attrs();
        assert!(attrs.len() >= 2, "need at least 2 clusters");
        let subset: Vec<&str> = attrs.iter().take(2).map(String::as_str).collect();
        let run = run_specialized(&corpus, &outcome, &subset, &cfg);

        assert_eq!(run.attrs.len(), 2);
        for t in &run.triples {
            assert!(
                subset.contains(&t.attr.as_str()),
                "triple outside subset: {t:?}"
            );
        }
    }
}
