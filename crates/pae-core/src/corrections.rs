//! Human-in-the-loop corrections (§VIII of the paper).
//!
//! The paper's qualitative analysis observes that *"precision figures
//! are often affected not by a large number of different errors, but a
//! few errors that affect many items. This makes it easier to improve
//! performance … by manual intervention, like modifying the seed corpus
//! or by correcting the output manually (human-in-the-loop)."*
//!
//! [`Corrections`] encodes exactly those two interventions: category-
//! level pair vetoes/additions applied to the seed before the loop, and
//! output-level removals applied to the final triples.

use std::collections::{HashMap, HashSet};

use crate::seed::Seed;
use crate::types::Triple;

/// A batch of human corrections.
#[derive(Debug, Clone, Default)]
pub struct Corrections {
    /// `(attr cluster, normalized value)` pairs to remove from the seed
    /// (and anywhere they appear in the output).
    pub veto_pairs: Vec<(String, String)>,
    /// Seed pairs to add for specific products (triples a human
    /// verified): these enter the training set like table pairs.
    pub add_triples: Vec<Triple>,
    /// `(attr cluster, from value, to value)` output rewrites: a human
    /// fixed a systematic extraction error (truncated span, spelling
    /// variant) without dropping the triples that carry it.
    pub rewrite_pairs: Vec<(String, String, String)>,
}

impl Corrections {
    /// No corrections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a category-level pair veto.
    pub fn veto_pair(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.veto_pairs.push((attr.into(), value.into()));
        self
    }

    /// Adds a human-verified triple to the seed.
    pub fn add_triple(mut self, triple: Triple) -> Self {
        self.add_triples.push(triple);
        self
    }

    /// Adds a category-level value rewrite applied to the output.
    pub fn rewrite_pair(
        mut self,
        attr: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        self.rewrite_pairs
            .push((attr.into(), from.into(), to.into()));
        self
    }

    /// True when nothing would change.
    pub fn is_empty(&self) -> bool {
        self.veto_pairs.is_empty() && self.add_triples.is_empty() && self.rewrite_pairs.is_empty()
    }

    /// Applies the seed-level corrections in place.
    pub fn apply_to_seed(&self, seed: &mut Seed) {
        let vetoed: HashSet<(&str, &str)> = self
            .veto_pairs
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        for (attr, values) in seed.table.values.iter_mut() {
            values.retain(|value, _| !vetoed.contains(&(attr.as_str(), value.as_str())));
        }
        seed.table.values.retain(|_, values| !values.is_empty());
        seed.product_pairs
            .retain(|p| !vetoed.contains(&(p.attr.as_str(), p.value.as_str())));
        for t in &self.add_triples {
            seed.table.add(&t.attr, &t.value);
            seed.product_pairs.push(crate::corpus::TablePair {
                product: t.product,
                attr: t.attr.clone(),
                value: t.value.clone(),
            });
        }
    }

    /// Applies the output-level vetoes and rewrites to extracted
    /// triples. With no rewrites configured this is a pure filter (same
    /// order, no re-sort); rewrites re-canonicalize (sort + dedup)
    /// because a rewrite can collide with an existing triple.
    pub fn apply_to_triples(&self, triples: Vec<Triple>) -> Vec<Triple> {
        let vetoed: HashSet<(&str, &str)> = self
            .veto_pairs
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        let mut out: Vec<Triple> = triples
            .into_iter()
            .filter(|t| !vetoed.contains(&(t.attr.as_str(), t.value.as_str())))
            .collect();
        if !self.rewrite_pairs.is_empty() {
            let rewrites: HashMap<(&str, &str), &str> = self
                .rewrite_pairs
                .iter()
                .map(|(a, from, to)| ((a.as_str(), from.as_str()), to.as_str()))
                .collect();
            for t in out.iter_mut() {
                if let Some(&to) = rewrites.get(&(t.attr.as_str(), t.value.as_str())) {
                    t.value = to.to_owned();
                }
            }
            out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
            out.dedup();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TablePair;
    use crate::types::AttrTable;

    fn toy_seed() -> Seed {
        let mut table = AttrTable::default();
        table.add("iro", "aka");
        table.add("iro", "zzz"); // the error a human spotted
        table.add("omosa", "2 kg");
        Seed {
            table: table.clone(),
            raw_table: table,
            product_pairs: vec![
                TablePair {
                    product: 0,
                    attr: "iro".into(),
                    value: "aka".into(),
                },
                TablePair {
                    product: 1,
                    attr: "iro".into(),
                    value: "zzz".into(),
                },
            ],
            alias_to_cluster: crate::seed::AliasTable::default(),
        }
    }

    #[test]
    fn veto_removes_pair_everywhere() {
        let mut seed = toy_seed();
        Corrections::new()
            .veto_pair("iro", "zzz")
            .apply_to_seed(&mut seed);
        assert_eq!(seed.table.values_of("iro"), vec!["aka"]);
        assert_eq!(seed.product_pairs.len(), 1);
    }

    #[test]
    fn veto_drops_emptied_attributes() {
        let mut seed = toy_seed();
        Corrections::new()
            .veto_pair("omosa", "2 kg")
            .apply_to_seed(&mut seed);
        assert!(!seed.table.values.contains_key("omosa"));
    }

    #[test]
    fn added_triples_enter_seed() {
        let mut seed = toy_seed();
        Corrections::new()
            .add_triple(Triple::new(7, "iro", "momo"))
            .apply_to_seed(&mut seed);
        assert!(seed.table.values_of("iro").contains(&"momo"));
        assert!(seed
            .product_pairs
            .iter()
            .any(|p| p.product == 7 && p.value == "momo"));
    }

    #[test]
    fn output_filtering() {
        let triples = vec![Triple::new(0, "iro", "aka"), Triple::new(1, "iro", "zzz")];
        let out = Corrections::new()
            .veto_pair("iro", "zzz")
            .apply_to_triples(triples);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, "aka");
    }

    #[test]
    fn output_rewrites_remap_and_recanonicalize() {
        let triples = vec![
            Triple::new(0, "iro", "aka"),
            Triple::new(0, "iro", "akai"), // variant a human folded in
            Triple::new(1, "iro", "akai"),
        ];
        let c = Corrections::new().rewrite_pair("iro", "akai", "aka");
        assert!(!c.is_empty());
        let out = c.apply_to_triples(triples);
        // Product 0's rewrite collides with its existing "aka" → dedup.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.value == "aka"));
        assert_eq!(out[0].product, 0);
        assert_eq!(out[1].product, 1);
    }

    #[test]
    fn empty_corrections_are_noops() {
        let c = Corrections::new();
        assert!(c.is_empty());
        let mut seed = toy_seed();
        let before_pairs = seed.product_pairs.len();
        c.apply_to_seed(&mut seed);
        assert_eq!(seed.product_pairs.len(), before_pairs);
    }
}
