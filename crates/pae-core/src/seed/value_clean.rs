//! Seed value cleaning (§V-A): *"incorrect attribute values are removed
//! by keeping only those values that are found in search queries (from
//! the search log input) or occur very often in its web page"*.

use std::collections::HashSet;

use crate::types::AttrTable;

/// Value-cleaning parameters.
#[derive(Debug, Clone)]
pub struct ValueCleanConfig {
    /// A value observed at least this many times is kept regardless of
    /// the query log.
    pub min_frequency: usize,
}

impl Default for ValueCleanConfig {
    fn default() -> Self {
        ValueCleanConfig { min_frequency: 3 }
    }
}

/// Applies the cleaning rule to a clustered candidate table.
///
/// A value is kept iff it appears (as a whole-token subsequence) in
/// some query, or its observation count is at least `min_frequency`.
/// Queries are compared token-wise so `akakaban` (a query for a red
/// bag) matches the value `aka` only when tokenization splits it.
pub fn clean_values(
    candidates: &AttrTable,
    query_log: &[String],
    config: &ValueCleanConfig,
) -> AttrTable {
    // Normalized queries are produced by the corpus/query generation
    // with the same tokenizer; here we only need token containment, so
    // a set of all query token n-grams would be heavy — instead test
    // subsequence containment per query lazily over a token index.
    let query_tokens: Vec<Vec<&str>> = query_log.iter().map(|q| q.split(' ').collect()).collect();
    // Fast pre-filter: set of all tokens occurring in any query.
    let token_set: HashSet<&str> = query_tokens.iter().flatten().copied().collect();

    let mut out = AttrTable::default();
    for (attr, values) in &candidates.values {
        for (value, &count) in values {
            let keep =
                count >= config.min_frequency || in_queries(value, &query_tokens, &token_set);
            if keep {
                for _ in 0..count {
                    out.add(attr, value);
                }
            }
        }
    }
    out
}

/// Whole-token containment of `value` in any query.
fn in_queries(value: &str, queries: &[Vec<&str>], token_set: &HashSet<&str>) -> bool {
    let v_tokens: Vec<&str> = value.split(' ').collect();
    if v_tokens.iter().any(|t| !token_set.contains(t)) {
        return false;
    }
    queries.iter().any(|q| contains_subsequence(q, &v_tokens))
}

/// True when `needle` occurs contiguously inside `haystack`.
fn contains_subsequence(haystack: &[&str], needle: &[&str]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, &str, usize)]) -> AttrTable {
        let mut t = AttrTable::default();
        for (attr, value, count) in entries {
            for _ in 0..*count {
                t.add(attr, value);
            }
        }
        t
    }

    #[test]
    fn frequent_values_survive_without_queries() {
        let t = table(&[("color", "aka", 5), ("color", "typo", 1)]);
        let cleaned = clean_values(&t, &[], &ValueCleanConfig { min_frequency: 3 });
        assert_eq!(cleaned.values_of("color"), vec!["aka"]);
    }

    #[test]
    fn queried_rare_values_survive() {
        let t = table(&[("color", "momo", 1), ("color", "junk", 1)]);
        let queries = vec!["momo kaban".to_owned()];
        let cleaned = clean_values(&t, &queries, &ValueCleanConfig { min_frequency: 3 });
        assert_eq!(cleaned.values_of("color"), vec!["momo"]);
    }

    #[test]
    fn multiword_values_need_contiguous_match() {
        let t = table(&[("material", "100 % cotton", 1)]);
        let q_scattered = vec!["100 things % off cotton".to_owned()];
        let cleaned = clean_values(&t, &q_scattered, &ValueCleanConfig { min_frequency: 5 });
        assert!(cleaned.values_of("material").is_empty());

        let q_exact = vec!["best 100 % cotton shirt".to_owned()];
        let cleaned = clean_values(&t, &q_exact, &ValueCleanConfig { min_frequency: 5 });
        assert_eq!(cleaned.values_of("material"), vec!["100 % cotton"]);
    }

    #[test]
    fn counts_are_preserved() {
        let t = table(&[("color", "aka", 4)]);
        let cleaned = clean_values(&t, &[], &ValueCleanConfig { min_frequency: 2 });
        assert_eq!(cleaned.values["color"]["aka"], 4);
    }

    #[test]
    fn subsequence_helper() {
        assert!(contains_subsequence(&["a", "b", "c"], &["b", "c"]));
        assert!(!contains_subsequence(&["a", "b", "c"], &["a", "c"]));
        assert!(contains_subsequence(&["a"], &[]));
        assert!(!contains_subsequence(&[], &["a"]));
    }
}
