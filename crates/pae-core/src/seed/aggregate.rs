//! Attribute-name aggregation (redundant-alias merging).
//!
//! Merchants name the same attribute differently (the paper's 製造元 vs
//! メーカー, black vs schwarz). Following Charron et al. (the paper's
//! [4]), two attribute names are scored by the values they share
//! relative to their range sizes, *"adjusted by a decreasing function
//! which reduces that confidence if the attributes have comparable
//! range sizes"* — aliases of one attribute typically have skewed
//! popularity, while two genuinely different attributes that share
//! values (weight vs max shipping weight!) tend to have ranges of
//! comparable size.

use std::collections::HashMap;

use crate::types::AttrTable;

/// Aggregation parameters.
#[derive(Debug, Clone)]
pub struct AggregationConfig {
    /// Minimum similarity score to merge two names.
    pub threshold: f64,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig { threshold: 0.35 }
    }
}

/// Similarity of two attribute names given their value sets.
///
/// `score = (|Va ∩ Vb| / min(|Va|, |Vb|)) · (1 − 0.75 · min/max)`
///
/// The first factor is containment confidence: a rare alias whose
/// values all fall inside the popular alias's range is almost surely
/// the same attribute. The second factor is the paper's decreasing
/// adjustment: two names with *comparable* range sizes that still share
/// values (weight vs maximum shipping weight) are probably distinct
/// attributes drawing from the same value space, so their confidence
/// is damped.
pub fn similarity(a: &HashMap<String, usize>, b: &HashMap<String, usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let shared = a.keys().filter(|v| b.contains_key(*v)).count() as f64;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let containment = shared / na.min(nb);
    let ratio = na.min(nb) / na.max(nb);
    containment * (1.0 - 0.75 * ratio)
}

/// Merges attribute names into clusters; returns `alias → cluster name`
/// where the cluster name is the member with the most observations.
#[allow(clippy::needless_range_loop)]
pub fn aggregate_attributes(
    candidates: &AttrTable,
    config: &AggregationConfig,
) -> HashMap<String, String> {
    let names: Vec<&str> = candidates.attrs();
    let n = names.len();

    // Union-find over name indices (explicit indices: `find` needs
    // `&mut` access while iterating pairs).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    for i in 0..n {
        for j in (i + 1)..n {
            let a = &candidates.values[names[i]];
            let b = &candidates.values[names[j]];
            if similarity(a, b) >= config.threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }

    // Observation mass per name (for choosing the cluster representative).
    let mass = |name: &str| -> usize { candidates.values[name].values().sum() };

    let mut cluster_best: HashMap<usize, &str> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        let entry = cluster_best.entry(root).or_insert(names[i]);
        if mass(names[i]) > mass(entry) {
            *entry = names[i];
        }
    }

    let mut out = HashMap::with_capacity(n);
    for i in 0..n {
        let root = find(&mut parent, i);
        out.insert(names[i].to_owned(), cluster_best[&root].to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, &[(&str, usize)])]) -> AttrTable {
        let mut t = AttrTable::default();
        for (attr, values) in entries {
            for (v, count) in *values {
                for _ in 0..*count {
                    t.add(attr, v);
                }
            }
        }
        t
    }

    #[test]
    fn aliases_with_skewed_ranges_merge() {
        // "iro" is the popular alias with 6 values; "karaa" is rare with
        // 2 values, both shared.
        let t = table(&[
            (
                "iro",
                &[
                    ("aka", 9),
                    ("ao", 7),
                    ("kiiro", 4),
                    ("momo", 2),
                    ("kuro", 5),
                    ("shiro", 3),
                ],
            ),
            ("karaa", &[("aka", 2), ("ao", 1)]),
        ]);
        let map = aggregate_attributes(&t, &AggregationConfig::default());
        assert_eq!(map["karaa"], "iro");
        assert_eq!(map["iro"], "iro");
    }

    #[test]
    fn distinct_attributes_with_disjoint_values_stay_apart() {
        let t = table(&[
            ("iro", &[("aka", 5), ("ao", 3)]),
            ("omosa", &[("2 kg", 5), ("3 kg", 4)]),
        ]);
        let map = aggregate_attributes(&t, &AggregationConfig::default());
        assert_eq!(map["iro"], "iro");
        assert_eq!(map["omosa"], "omosa");
    }

    #[test]
    fn comparable_ranges_with_shared_values_resist_merging() {
        // weight vs max shipping weight: same value shapes, comparable
        // range sizes — the damping must keep them apart at the default
        // threshold even with substantial overlap.
        let t = table(&[
            (
                "omosa",
                &[
                    ("2 kg", 5),
                    ("3 kg", 4),
                    ("4 kg", 3),
                    ("5 kg", 2),
                    ("7 kg", 1),
                ],
            ),
            (
                "saidaiomosa",
                &[
                    ("2 kg", 3),
                    ("3 kg", 3),
                    ("6 kg", 2),
                    ("8 kg", 2),
                    ("9 kg", 1),
                ],
            ),
        ]);
        let a = &t.values["omosa"];
        let b = &t.values["saidaiomosa"];
        // 2 shared / 5 min = 0.4, damped by (1 - 0.75·1.0) = 0.25 → 0.1.
        assert!(similarity(a, b) < 0.35);
        let map = aggregate_attributes(&t, &AggregationConfig::default());
        assert_eq!(map["omosa"], "omosa");
        assert_eq!(map["saidaiomosa"], "saidaiomosa");
    }

    #[test]
    fn representative_is_highest_mass_member() {
        let t = table(&[
            ("big", &[("x", 10), ("y", 10), ("z", 2), ("w", 2)]),
            ("small", &[("x", 1), ("y", 1)]),
        ]);
        let map = aggregate_attributes(&t, &AggregationConfig::default());
        assert_eq!(map["small"], "big");
    }

    #[test]
    fn empty_table() {
        let map = aggregate_attributes(&AttrTable::default(), &AggregationConfig::default());
        assert!(map.is_empty());
    }

    #[test]
    fn transitive_merging_via_union_find() {
        // a↔b similar, b↔c similar, a↔c not directly: all one cluster.
        let t = table(&[
            (
                "a",
                &[
                    ("v1", 9),
                    ("v2", 8),
                    ("v3", 7),
                    ("v4", 6),
                    ("v5", 5),
                    ("v6", 4),
                ],
            ),
            ("b", &[("v1", 2), ("v2", 1)]),
            ("c", &[("v1", 1)]),
        ]);
        let map = aggregate_attributes(&t, &AggregationConfig::default());
        assert_eq!(map["b"], "a");
        assert_eq!(map["c"], "a");
    }
}
