//! Seed construction (§V-A): candidate discovery, attribute-name
//! aggregation, and value cleaning.

pub mod aggregate;
pub mod value_clean;

use std::collections::HashMap;

use crate::corpus::{Corpus, TablePair};
use crate::types::AttrTable;

pub use aggregate::{aggregate_attributes, AggregationConfig};
pub use value_clean::{clean_values, ValueCleanConfig};

/// The seed after discovery + aggregation + cleaning: the cluster table
/// plus the per-product pairs (needed to tag the initial training set).
#[derive(Debug, Clone)]
pub struct Seed {
    /// Cluster name → values (cleaned).
    pub table: AttrTable,
    /// Cluster name → values *before* cleaning (the diversification
    /// module samples shapes from here).
    pub raw_table: AttrTable,
    /// Per-product `(cluster, value)` pairs surviving cleaning.
    pub product_pairs: Vec<TablePair>,
    /// Alias → cluster name mapping produced by aggregation.
    pub alias_to_cluster: HashMap<String, String>,
}

/// Builds the candidate [`AttrTable`] straight from dictionary tables
/// (line 2 of the paper's algorithm).
pub fn candidate_discovery(corpus: &Corpus) -> AttrTable {
    let mut table = AttrTable::default();
    for pair in &corpus.table_pairs {
        table.add(&pair.attr, &pair.value);
    }
    table
}

/// Runs the full seed stage: discovery → aggregation → value cleaning.
pub fn build_seed(
    corpus: &Corpus,
    query_log: &[String],
    agg: &AggregationConfig,
    clean: &ValueCleanConfig,
) -> Seed {
    let candidates = candidate_discovery(corpus);
    let alias_to_cluster = aggregate_attributes(&candidates, agg);

    // Re-key candidates by cluster.
    let mut clustered = AttrTable::default();
    for pair in &corpus.table_pairs {
        let cluster = alias_to_cluster
            .get(&pair.attr)
            .cloned()
            .unwrap_or_else(|| pair.attr.clone());
        clustered.add(&cluster, &pair.value);
    }

    let table = clean_values(&clustered, query_log, clean);

    // Product pairs surviving cleaning, re-keyed by cluster.
    let surviving: HashMap<&str, &HashMap<String, usize>> =
        table.values.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let product_pairs = corpus
        .table_pairs
        .iter()
        .filter_map(|pair| {
            let cluster = alias_to_cluster
                .get(&pair.attr)
                .cloned()
                .unwrap_or_else(|| pair.attr.clone());
            let kept = surviving
                .get(cluster.as_str())
                .is_some_and(|vals| vals.contains_key(&pair.value));
            kept.then(|| TablePair {
                product: pair.product,
                attr: cluster,
                value: pair.value.clone(),
            })
        })
        .collect();

    Seed {
        table,
        raw_table: clustered,
        product_pairs,
        alias_to_cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, DatasetSpec};

    #[test]
    fn seed_builds_on_generated_data() {
        let d = DatasetSpec::new(CategoryKind::LadiesBags, 42)
            .products(80)
            .generate();
        let corpus = parse_corpus(&d);
        let seed = build_seed(
            &corpus,
            &d.query_log,
            &AggregationConfig::default(),
            &ValueCleanConfig::default(),
        );
        assert!(seed.table.n_pairs() > 10, "seed too small");
        assert!(!seed.product_pairs.is_empty());
        // Cleaning must not invent pairs.
        let raw = candidate_discovery(&corpus);
        assert!(seed.table.n_pairs() <= raw.n_pairs());
    }
}
