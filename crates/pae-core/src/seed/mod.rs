//! Seed construction (§V-A): candidate discovery, attribute-name
//! aggregation, and value cleaning.

pub mod aggregate;
pub mod value_clean;

use std::collections::HashMap;

use pae_fst::Fst;

use crate::corpus::{Corpus, TablePair};
use crate::types::AttrTable;

pub use aggregate::{aggregate_attributes, AggregationConfig};
pub use value_clean::{clean_values, ValueCleanConfig};

/// Alias → cluster-name table, stored as a byte-keyed automaton over
/// the aliases plus one deduplicated cluster-name list: each lookup is
/// a single trie descent and the aggregated surface forms are stored
/// once, prefix-compressed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AliasTable {
    /// Alias → index into `clusters`.
    fst: Fst,
    /// Deduplicated cluster names, sorted.
    clusters: Vec<String>,
}

impl AliasTable {
    /// Builds the table from `alias → cluster` pairs.
    pub fn from_map(map: &HashMap<String, String>) -> AliasTable {
        let mut clusters: Vec<String> = map.values().cloned().collect();
        clusters.sort_unstable();
        clusters.dedup();
        let mut pairs: Vec<(&[u8], u32)> = map
            .iter()
            .map(|(alias, cluster)| {
                let idx = clusters
                    .binary_search(cluster)
                    .expect("cluster list covers every value") as u32;
                (alias.as_bytes(), idx)
            })
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let fst = Fst::build(&pairs, 0).expect("deduplicated alias keys always build");
        AliasTable { fst, clusters }
    }

    /// The cluster an alias was aggregated into, if any.
    pub fn get(&self, alias: &str) -> Option<&str> {
        let idx = self.fst.get(alias.as_bytes())? as usize;
        self.clusters.get(idx).map(String::as_str)
    }

    /// Number of aliases.
    pub fn len(&self) -> usize {
        self.fst.n_keys()
    }

    /// True when no alias is mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(alias, cluster)` pairs in alias order.
    pub fn iter(&self) -> impl Iterator<Item = (String, &str)> + '_ {
        self.fst.iter().filter_map(|(k, v)| {
            Some((
                String::from_utf8(k).ok()?,
                self.clusters.get(v as usize)?.as_str(),
            ))
        })
    }
}

/// The seed after discovery + aggregation + cleaning: the cluster table
/// plus the per-product pairs (needed to tag the initial training set).
#[derive(Debug, Clone)]
pub struct Seed {
    /// Cluster name → values (cleaned).
    pub table: AttrTable,
    /// Cluster name → values *before* cleaning (the diversification
    /// module samples shapes from here).
    pub raw_table: AttrTable,
    /// Per-product `(cluster, value)` pairs surviving cleaning.
    pub product_pairs: Vec<TablePair>,
    /// Alias → cluster name mapping produced by aggregation.
    pub alias_to_cluster: AliasTable,
}

/// Builds the candidate [`AttrTable`] straight from dictionary tables
/// (line 2 of the paper's algorithm).
pub fn candidate_discovery(corpus: &Corpus) -> AttrTable {
    let mut table = AttrTable::default();
    for pair in &corpus.table_pairs {
        table.add(&pair.attr, &pair.value);
    }
    table
}

/// Runs the full seed stage: discovery → aggregation → value cleaning.
pub fn build_seed(
    corpus: &Corpus,
    query_log: &[String],
    agg: &AggregationConfig,
    clean: &ValueCleanConfig,
) -> Seed {
    let candidates = candidate_discovery(corpus);
    let alias_to_cluster = AliasTable::from_map(&aggregate_attributes(&candidates, agg));

    // Re-key candidates by cluster.
    let mut clustered = AttrTable::default();
    for pair in &corpus.table_pairs {
        let cluster = alias_to_cluster
            .get(&pair.attr)
            .map(str::to_owned)
            .unwrap_or_else(|| pair.attr.clone());
        clustered.add(&cluster, &pair.value);
    }

    let table = clean_values(&clustered, query_log, clean);

    // Product pairs surviving cleaning, re-keyed by cluster.
    let surviving: HashMap<&str, &HashMap<String, usize>> =
        table.values.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let product_pairs = corpus
        .table_pairs
        .iter()
        .filter_map(|pair| {
            let cluster = alias_to_cluster
                .get(&pair.attr)
                .map(str::to_owned)
                .unwrap_or_else(|| pair.attr.clone());
            let kept = surviving
                .get(cluster.as_str())
                .is_some_and(|vals| vals.contains_key(&pair.value));
            kept.then(|| TablePair {
                product: pair.product,
                attr: cluster,
                value: pair.value.clone(),
            })
        })
        .collect();

    Seed {
        table,
        raw_table: clustered,
        product_pairs,
        alias_to_cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, DatasetSpec};

    #[test]
    fn seed_builds_on_generated_data() {
        let d = DatasetSpec::new(CategoryKind::LadiesBags, 42)
            .products(80)
            .generate();
        let corpus = parse_corpus(&d);
        let seed = build_seed(
            &corpus,
            &d.query_log,
            &AggregationConfig::default(),
            &ValueCleanConfig::default(),
        );
        assert!(seed.table.n_pairs() > 10, "seed too small");
        assert!(!seed.product_pairs.is_empty());
        // Cleaning must not invent pairs.
        let raw = candidate_discovery(&corpus);
        assert!(seed.table.n_pairs() <= raw.n_pairs());
    }
}
