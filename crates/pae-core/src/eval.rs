//! Evaluation metrics (§VI-C).

use std::collections::{HashMap, HashSet};

use pae_synth::truth::Judgement;
use pae_synth::GroundTruth;

use crate::corpus::TablePair;
use crate::types::{AttrTable, Triple};

/// Triple-level evaluation report.
#[derive(Debug, Clone, Default)]
pub struct EvalReport {
    /// Triples judged correct.
    pub correct: usize,
    /// Triples judged incorrect.
    pub incorrect: usize,
    /// Triples whose product+attribute match but value disagrees.
    pub maybe_incorrect: usize,
    /// Products with at least one triple.
    pub covered_products: usize,
    /// Products in the dataset.
    pub n_products: usize,
    /// Per canonical attribute: products covered by a triple of it.
    pub attr_coverage: HashMap<String, usize>,
    /// Per canonical attribute: correct / total triples.
    pub attr_precision: HashMap<String, (usize, usize)>,
}

impl EvalReport {
    /// `correct / (correct + incorrect + maybe_incorrect)` — the
    /// paper's precision; 1.0 for an empty output.
    pub fn precision(&self) -> f64 {
        let denom = self.correct + self.incorrect + self.maybe_incorrect;
        if denom == 0 {
            return 1.0;
        }
        self.correct as f64 / denom as f64
    }

    /// Product coverage.
    pub fn coverage(&self) -> f64 {
        if self.n_products == 0 {
            return 0.0;
        }
        self.covered_products as f64 / self.n_products as f64
    }

    /// Total triples evaluated.
    pub fn n_triples(&self) -> usize {
        self.correct + self.incorrect + self.maybe_incorrect
    }

    /// Average triples per covered product.
    pub fn triples_per_product(&self) -> f64 {
        if self.covered_products == 0 {
            return 0.0;
        }
        self.n_triples() as f64 / self.covered_products as f64
    }

    /// Coverage of one canonical attribute.
    pub fn attr_coverage_of(&self, attr: &str) -> f64 {
        if self.n_products == 0 {
            return 0.0;
        }
        *self.attr_coverage.get(attr).unwrap_or(&0) as f64 / self.n_products as f64
    }

    /// Precision of one canonical attribute.
    pub fn attr_precision_of(&self, attr: &str) -> f64 {
        match self.attr_precision.get(attr) {
            Some((_, 0)) | None => 1.0,
            Some((c, n)) => *c as f64 / *n as f64,
        }
    }

    /// Records this report into the obs trace (no-op when collection is
    /// off): one `eval.summary` event with the headline metrics plus an
    /// `eval.attr` event per canonical attribute, all tagged with `key`
    /// so a trace holding many evaluations (several configs, several
    /// iterations) stays attributable. `pae-report` builds its quality
    /// ledger from these events.
    pub fn record_obs(&self, key: &str) {
        if !pae_obs::enabled() {
            return;
        }
        pae_obs::event(
            "eval.summary",
            vec![
                ("key".into(), key.into()),
                ("precision".into(), self.precision().into()),
                ("coverage".into(), self.coverage().into()),
                ("n_triples".into(), self.n_triples().into()),
                ("correct".into(), self.correct.into()),
                ("incorrect".into(), self.incorrect.into()),
                ("maybe_incorrect".into(), self.maybe_incorrect.into()),
                ("covered_products".into(), self.covered_products.into()),
                ("n_products".into(), self.n_products.into()),
            ],
        );
        let mut attrs: Vec<&String> = self
            .attr_precision
            .keys()
            .chain(self.attr_coverage.keys())
            .collect();
        attrs.sort();
        attrs.dedup();
        for attr in attrs {
            pae_obs::event(
                "eval.attr",
                vec![
                    ("key".into(), key.into()),
                    ("attribute".into(), attr.as_str().into()),
                    ("precision".into(), self.attr_precision_of(attr).into()),
                    ("coverage".into(), self.attr_coverage_of(attr).into()),
                ],
            );
        }
    }
}

/// Evaluates extracted triples against the ground truth.
pub fn evaluate_triples(triples: &[Triple], truth: &GroundTruth) -> EvalReport {
    let mut report = EvalReport {
        n_products: truth.n_products(),
        ..Default::default()
    };
    let mut covered: HashSet<u32> = HashSet::new();
    let mut attr_covered: HashMap<String, HashSet<u32>> = HashMap::new();

    for t in triples {
        let canonical = truth
            .canonical_attr(&t.attr)
            .unwrap_or(t.attr.as_str())
            .to_owned();
        let judgement = truth.judge(t.product, &t.attr, &t.value);
        let entry = report
            .attr_precision
            .entry(canonical.clone())
            .or_insert((0, 0));
        entry.1 += 1;
        match judgement {
            Judgement::Correct => {
                report.correct += 1;
                entry.0 += 1;
            }
            Judgement::MaybeIncorrect => report.maybe_incorrect += 1,
            Judgement::Incorrect => report.incorrect += 1,
        }
        covered.insert(t.product);
        attr_covered.entry(canonical).or_default().insert(t.product);
    }

    report.covered_products = covered.len();
    report.attr_coverage = attr_covered
        .into_iter()
        .map(|(a, products)| (a, products.len()))
        .collect();
    report
}

/// Seed-level report (the paper's Table I).
#[derive(Debug, Clone, Default)]
pub struct PairReport {
    /// Distinct `(attr, value)` pairs in the seed.
    pub n_pairs: usize,
    /// Pairs that are valid category-level associations.
    pub correct_pairs: usize,
    /// Seed triples (product-level pairs).
    pub n_triples: usize,
    /// Seed triples judged correct.
    pub correct_triples: usize,
    /// Product coverage of the seed triples.
    pub covered_products: usize,
    /// Products in the dataset.
    pub n_products: usize,
}

impl PairReport {
    /// Pair precision.
    pub fn pair_precision(&self) -> f64 {
        if self.n_pairs == 0 {
            return 1.0;
        }
        self.correct_pairs as f64 / self.n_pairs as f64
    }

    /// Triple precision.
    pub fn triple_precision(&self) -> f64 {
        if self.n_triples == 0 {
            return 1.0;
        }
        self.correct_triples as f64 / self.n_triples as f64
    }

    /// Product coverage.
    pub fn coverage(&self) -> f64 {
        if self.n_products == 0 {
            return 0.0;
        }
        self.covered_products as f64 / self.n_products as f64
    }
}

/// Evaluates the seed (cluster table + per-product pairs).
pub fn evaluate_pairs(
    table: &AttrTable,
    product_pairs: &[TablePair],
    truth: &GroundTruth,
) -> PairReport {
    let mut report = PairReport {
        n_products: truth.n_products(),
        ..Default::default()
    };
    for attr in table.attrs() {
        for value in table.values_of(attr) {
            report.n_pairs += 1;
            if truth.pair_valid(attr, value) {
                report.correct_pairs += 1;
            }
        }
    }
    let mut covered = HashSet::new();
    for pair in product_pairs {
        report.n_triples += 1;
        if truth.judge(pair.product, &pair.attr, &pair.value) == Judgement::Correct {
            report.correct_triples += 1;
        }
        covered.insert(pair.product);
    }
    report.covered_products = covered.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        t.attr_alias.insert("iro".into(), "color".into());
        t.valid_pairs
            .entry("color".into())
            .or_default()
            .extend(["aka".to_owned(), "ao".to_owned()]);
        let mut p0 = HashMap::new();
        p0.insert("color".to_owned(), HashSet::from(["aka".to_owned()]));
        t.product_triples.insert(0, p0);
        let mut p1 = HashMap::new();
        p1.insert("color".to_owned(), HashSet::from(["ao".to_owned()]));
        t.product_triples.insert(1, p1);
        t.product_ids = vec![0, 1, 2, 3];
        t
    }

    #[test]
    fn precision_counts_maybe_incorrect_as_wrong() {
        let truth = toy_truth();
        let triples = vec![
            Triple::new(0, "iro", "aka"), // correct
            Triple::new(1, "iro", "aka"), // maybe (p1 is ao)
            Triple::new(2, "iro", "aka"), // incorrect (p2 has no color)
        ];
        let r = evaluate_triples(&triples, &truth);
        assert_eq!(r.correct, 1);
        assert_eq!(r.maybe_incorrect, 1);
        assert_eq!(r.incorrect, 1);
        assert!((r.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.covered_products, 3);
        assert!((r.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn attr_level_metrics() {
        let truth = toy_truth();
        let triples = vec![Triple::new(0, "iro", "aka"), Triple::new(1, "iro", "ao")];
        let r = evaluate_triples(&triples, &truth);
        assert!((r.attr_coverage_of("color") - 0.5).abs() < 1e-12);
        assert!((r.attr_precision_of("color") - 1.0).abs() < 1e-12);
        assert_eq!(r.attr_coverage_of("weight"), 0.0);
    }

    #[test]
    fn empty_output_has_unit_precision_zero_coverage() {
        let truth = toy_truth();
        let r = evaluate_triples(&[], &truth);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.n_triples(), 0);
    }

    #[test]
    fn record_obs_emits_keyed_summary_and_attr_events() {
        let truth = toy_truth();
        let triples = vec![Triple::new(0, "iro", "aka"), Triple::new(1, "iro", "ao")];
        let r = evaluate_triples(&triples, &truth);
        let was_enabled = pae_obs::enabled();
        pae_obs::set_enabled(true);
        r.record_obs("unit/record_obs");
        let records = pae_obs::snapshot();
        pae_obs::set_enabled(was_enabled);

        // Other tests share the global collector, so look for our key.
        let keyed = |name: &str| {
            records.iter().find(|rec| {
                rec.name == name
                    && rec.fields.iter().any(|(k, v)| {
                        k == "key" && *v == pae_obs::FieldValue::Str("unit/record_obs".into())
                    })
            })
        };
        let summary = keyed("eval.summary").expect("eval.summary missing");
        assert!(summary
            .fields
            .iter()
            .any(|(k, v)| k == "n_triples" && *v == pae_obs::FieldValue::U64(2)));
        let attr = keyed("eval.attr").expect("eval.attr missing");
        assert!(attr
            .fields
            .iter()
            .any(|(k, v)| k == "attribute" && *v == pae_obs::FieldValue::Str("color".into())));
    }

    #[test]
    fn pair_report_judges_both_levels() {
        let truth = toy_truth();
        let mut table = AttrTable::default();
        table.add("iro", "aka");
        table.add("iro", "zzz");
        let pairs = vec![
            TablePair {
                product: 0,
                attr: "iro".into(),
                value: "aka".into(),
            },
            TablePair {
                product: 1,
                attr: "iro".into(),
                value: "aka".into(),
            },
        ];
        let r = evaluate_pairs(&table, &pairs, &truth);
        assert_eq!(r.n_pairs, 2);
        assert_eq!(r.correct_pairs, 1);
        assert_eq!(r.n_triples, 2);
        assert_eq!(r.correct_triples, 1);
        assert!((r.coverage() - 0.5).abs() < 1e-12);
    }
}
