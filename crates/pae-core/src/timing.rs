//! Per-stage wall-clock instrumentation for the bootstrap pipeline.
//!
//! Every [`crate::bootstrap::IterationSnapshot`] carries a
//! [`StageTimings`] record and every
//! [`crate::bootstrap::BootstrapOutcome`] a [`PrepTimings`] record, so
//! the experiment binaries can report where a cycle spends its time
//! without re-instrumenting the pipeline.

use std::time::{Duration, Instant};

/// Wall clock per pipeline stage for one Tagger–Cleaner cycle.
///
/// For the ensemble tagger the CRF and RNN backends run concurrently;
/// `train` and `extract` then record the slower backend's duration
/// (the stage's wall clock, not the summed CPU time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Tagger training (CRF L-BFGS and/or BiLSTM SGD).
    pub train: Duration,
    /// Viterbi/BiLSTM decoding over the whole corpus.
    pub extract: Duration,
    /// Syntactic veto rules.
    pub veto: Duration,
    /// word2vec retraining + semantic drift filtering.
    pub semantic: Duration,
}

impl StageTimings {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.train + self.extract + self.veto + self.semantic
    }

    /// One-line human-readable report.
    pub fn summary(&self) -> String {
        format!(
            "train {:.3}s  extract {:.3}s  veto {:.3}s  semantic {:.3}s",
            self.train.as_secs_f64(),
            self.extract.as_secs_f64(),
            self.veto.as_secs_f64(),
            self.semantic.as_secs_f64(),
        )
    }
}

/// Wall clock for the pre-loop stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepTimings {
    /// Seed construction from HTML dictionary tables.
    pub seed: Duration,
    /// Seed value diversification (zero when disabled).
    pub diversify: Duration,
}

/// Times one closure, returning its result and the elapsed wall clock.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_stages() {
        let t = StageTimings {
            train: Duration::from_millis(5),
            extract: Duration::from_millis(7),
            veto: Duration::from_millis(1),
            semantic: Duration::from_millis(2),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
        let s = t.summary();
        assert!(s.contains("train") && s.contains("semantic"), "{s}");
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, d) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }
}
