//! Per-stage wall-clock instrumentation for the bootstrap pipeline.
//!
//! Every [`crate::bootstrap::IterationSnapshot`] carries a
//! [`StageTimings`] record and every
//! [`crate::bootstrap::BootstrapOutcome`] a [`PrepTimings`] record, so
//! the experiment binaries can report where a cycle spends its time
//! without re-instrumenting the pipeline.
//!
//! Since the `pae-obs` integration these structs are thin views over
//! the trace spans: each stage duration is the measured length of the
//! corresponding span (see [`span_timed`]), so the wall-clock report
//! and the JSONL trace can never disagree.

use std::time::{Duration, Instant};

/// Wall clock per pipeline stage for one Tagger–Cleaner cycle.
///
/// For the ensemble tagger the CRF and RNN backends run concurrently;
/// `train` and `extract` then record the slower backend's duration
/// (the stage's wall clock, not the summed CPU time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Tagger training (CRF L-BFGS and/or BiLSTM SGD).
    pub train: Duration,
    /// Viterbi/BiLSTM decoding over the whole corpus.
    pub extract: Duration,
    /// Syntactic veto rules.
    pub veto: Duration,
    /// word2vec retraining + semantic drift filtering.
    pub semantic: Duration,
    /// Human-corrections pass over the cycle's output.
    pub corrections: Duration,
    /// Breakdown of `train` into the CRF sub-stages (all zero for the
    /// RNN backend). These are *within* `train`, not additive to it,
    /// so [`StageTimings::total`] ignores them.
    pub crf: CrfStageTimings,
}

/// Wall clock of the CRF training sub-stages, mirroring the
/// `crf.extract_features` / `crf.grad` / `crf.line_search` trace spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrfStageTimings {
    /// Training-instance encoding (feature extraction + interning,
    /// including cross-cycle cache lookups).
    pub features: Duration,
    /// Accumulated gradient/NLL evaluations inside the optimizer.
    pub grad: Duration,
    /// Accumulated line-search probing inside the optimizer.
    pub line_search: Duration,
}

impl StageTimings {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.train + self.extract + self.veto + self.semantic + self.corrections
    }

    /// One-line human-readable report.
    pub fn summary(&self) -> String {
        format!(
            "train {:.3}s  extract {:.3}s  veto {:.3}s  semantic {:.3}s  corrections {:.3}s",
            self.train.as_secs_f64(),
            self.extract.as_secs_f64(),
            self.veto.as_secs_f64(),
            self.semantic.as_secs_f64(),
            self.corrections.as_secs_f64(),
        )
    }
}

/// Wall clock for the pre-loop stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepTimings {
    /// Seed construction from HTML dictionary tables.
    pub seed: Duration,
    /// Seed value diversification (zero when disabled).
    pub diversify: Duration,
}

/// Times one closure, returning its result and the elapsed wall clock.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Times one closure under a named `pae-obs` span, returning its result
/// and the span's measured duration. This is what makes
/// [`StageTimings`] a view over the trace: the duration reported here
/// is byte-for-byte the `dur_ns` of the emitted span.
pub fn span_timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Duration) {
    let span = pae_obs::span(name);
    let r = f();
    (r, span.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_stages() {
        let t = StageTimings {
            train: Duration::from_millis(5),
            extract: Duration::from_millis(7),
            veto: Duration::from_millis(1),
            semantic: Duration::from_millis(2),
            corrections: Duration::from_millis(3),
            crf: CrfStageTimings {
                features: Duration::from_millis(1),
                grad: Duration::from_millis(3),
                line_search: Duration::from_millis(1),
            },
        };
        assert_eq!(t.total(), Duration::from_millis(18));
        let s = t.summary();
        assert!(
            s.contains("train") && s.contains("semantic") && s.contains("corrections"),
            "{s}"
        );
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, d) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }

    #[test]
    fn span_timed_emits_matching_span() {
        pae_obs::set_enabled(true);
        pae_obs::clear();
        let (v, d) = span_timed("stage.test", || 6 * 7);
        assert_eq!(v, 42);
        let records = pae_obs::snapshot();
        let end = records
            .iter()
            .find(|r| r.kind == pae_obs::RecordKind::SpanEnd && r.name == "stage.test")
            .expect("span_end emitted");
        assert_eq!(
            end.field("dur_ns"),
            Some(&pae_obs::FieldValue::U64(d.as_nanos() as u64)),
            "StageTimings duration equals the span's dur_ns"
        );
        pae_obs::set_enabled(false);
        pae_obs::clear();
    }
}
