//! Triple provenance: the per-candidate lineage ledger.
//!
//! [`ProvLog`] threads a compact decision trail through the bootstrap
//! loop: where each `(attr, value)` pair came from (seed cell,
//! diversification, tagger extraction), what the models thought of it
//! (CRF posterior / RNN softmax decode confidence), every veto rule
//! that fired on it (or nearly did), its semantic-core similarity per
//! cleaning pass, any human correction applied, and its final
//! disposition. Records are emitted through [`pae_obs::provenance`] and
//! reconstructed by `pae-report explain`.
//!
//! Determinism is a hard requirement: everything here runs on the main
//! thread, after the (parallel) pipeline stages have produced their
//! results, and every emission loop iterates a `BTree` collection — so
//! the record stream is byte-identical across repeats and worker-pool
//! sizes. The log is also strictly read-only with respect to the
//! pipeline: no method returns anything the pipeline consumes.

use std::collections::{BTreeMap, BTreeSet};

use pae_obs::FieldValue;

use crate::bootstrap::CandidateScores;
use crate::cleaning::{SemanticDecision, VetoDecision};
use crate::corrections::Corrections;
use crate::types::Triple;

/// `(attr, value)` — the identity a lineage trail is keyed on.
type Pair = (String, String);

/// How many product ids a single provenance record lists before
/// truncating (the distinct-product *count* is always exact).
const MAX_PRODUCT_IDS: usize = 16;

/// Per-pair aggregate of one extraction round.
#[derive(Default)]
struct Sighting {
    products: BTreeSet<u32>,
    conf_crf: Option<f64>,
    conf_rnn: Option<f64>,
}

/// The lineage ledger for one bootstrap run.
///
/// Construct with [`ProvLog::new`] (a no-op shell unless
/// [`pae_obs::provenance_enabled`] at that moment), feed it each
/// stage's outcome in pipeline order, and call [`ProvLog::finish`] with
/// the final triples to emit one disposition per pair ever seen.
pub struct ProvLog {
    active: bool,
    seen: BTreeSet<Pair>,
    /// Last *decisive* drop per pair: `(stage, iteration)`. A pair that
    /// is re-extracted and survives later simply ends up in the final
    /// set, which overrides this.
    last_drop: BTreeMap<Pair, (String, usize)>,
    /// Human rewrites applied to the pair: `(new value, iteration)`.
    rewritten: BTreeMap<Pair, (String, usize)>,
}

impl ProvLog {
    /// A ledger that records iff provenance collection is enabled right
    /// now (the flag is latched so one run is internally consistent).
    pub fn new() -> Self {
        ProvLog {
            active: pae_obs::provenance_enabled(),
            seen: BTreeSet::new(),
            last_drop: BTreeMap::new(),
            rewritten: BTreeMap::new(),
        }
    }

    /// Whether this ledger records anything (callers can skip building
    /// trace-only inputs when it does not).
    pub fn active(&self) -> bool {
        self.active
    }

    /// Records the pre-loop origins: seed triples (pairs from
    /// `corrections.add_triples` are attributed to the human), then the
    /// diversified table values that are not already covered.
    pub fn record_origins(
        &mut self,
        seed_triples: &[Triple],
        extra_values: &[(String, String)],
        corrections: &Corrections,
    ) {
        if !self.active {
            return;
        }
        let human: BTreeSet<Pair> = corrections
            .add_triples
            .iter()
            .map(|t| (t.attr.clone(), t.value.clone()))
            .collect();
        let mut per_pair: BTreeMap<Pair, BTreeSet<u32>> = BTreeMap::new();
        for t in seed_triples {
            per_pair
                .entry((t.attr.clone(), t.value.clone()))
                .or_default()
                .insert(t.product);
        }
        for (pair, products) in &per_pair {
            let origin = if human.contains(pair) {
                "correction"
            } else {
                "seed"
            };
            self.emit_origin(pair, origin, 0, None, products, None, None);
        }
        for (attr, value) in extra_values {
            let pair = (attr.clone(), value.clone());
            if !self.seen.contains(&pair) {
                self.emit_origin(&pair, "diversify", 0, None, &BTreeSet::new(), None, None);
            }
        }
    }

    /// Records one extraction round: first sightings become
    /// `prov.origin` records (origin `"tagger"`), re-sightings become
    /// `prov.extract`, and candidates the ensemble intersection threw
    /// away become `prov.ensemble` drops.
    pub fn record_candidates(
        &mut self,
        iteration: usize,
        backend: &'static str,
        candidates: &[Triple],
        scores: Option<&CandidateScores>,
    ) {
        if !self.active {
            return;
        }
        let mut per_pair: BTreeMap<Pair, Sighting> = BTreeMap::new();
        for (i, t) in candidates.iter().enumerate() {
            let s = per_pair
                .entry((t.attr.clone(), t.value.clone()))
                .or_default();
            s.products.insert(t.product);
            if let Some(scores) = scores {
                if let Some(&c) = scores.crf.get(i) {
                    s.conf_crf = Some(s.conf_crf.map_or(c, |m: f64| m.max(c)));
                }
                if let Some(&c) = scores.rnn.get(i) {
                    s.conf_rnn = Some(s.conf_rnn.map_or(c, |m: f64| m.max(c)));
                }
            }
        }
        for (pair, s) in &per_pair {
            if self.seen.contains(pair) {
                let mut fields = vec![
                    ("attr".to_string(), pair.0.clone().into()),
                    ("value".to_string(), pair.1.clone().into()),
                    ("iteration".to_string(), iteration.into()),
                    ("backend".to_string(), backend.into()),
                    ("products".to_string(), s.products.len().into()),
                ];
                push_conf(&mut fields, s.conf_crf, s.conf_rnn);
                pae_obs::provenance("prov.extract", fields);
            } else {
                self.emit_origin(
                    pair,
                    "tagger",
                    iteration,
                    Some(backend),
                    &s.products,
                    s.conf_crf,
                    s.conf_rnn,
                );
            }
        }
        // One-backend-only candidates the precision-first intersection
        // dropped: surfaced with the backend that produced them.
        if let Some(scores) = scores {
            let mut dropped: BTreeMap<Pair, (&'static str, f64)> = BTreeMap::new();
            for (t, solo_backend, conf) in &scores.ensemble_dropped {
                let e = dropped
                    .entry((t.attr.clone(), t.value.clone()))
                    .or_insert((solo_backend, *conf));
                e.1 = e.1.max(*conf);
            }
            for (pair, (solo_backend, conf)) in dropped {
                if !self.seen.contains(&pair) {
                    let (crf, rnn) = match solo_backend {
                        "rnn" => (None, Some(conf)),
                        _ => (Some(conf), None),
                    };
                    self.emit_origin(
                        &pair,
                        "tagger",
                        iteration,
                        Some(solo_backend),
                        &BTreeSet::new(),
                        crf,
                        rnn,
                    );
                    self.last_drop
                        .insert(pair.clone(), ("ensemble".to_string(), iteration));
                }
                pae_obs::provenance(
                    "prov.ensemble",
                    vec![
                        ("attr".to_string(), pair.0.into()),
                        ("value".to_string(), pair.1.into()),
                        ("iteration".to_string(), iteration.into()),
                        ("backend".to_string(), solo_backend.into()),
                        ("conf".to_string(), conf.into()),
                    ],
                );
            }
        }
    }

    /// Records the veto pass's fires and near-misses.
    pub fn record_veto(&mut self, iteration: usize, decisions: &[VetoDecision]) {
        if !self.active {
            return;
        }
        for d in decisions {
            pae_obs::provenance(
                "prov.veto",
                vec![
                    ("attr".to_string(), d.attr.clone().into()),
                    ("value".to_string(), d.value.clone().into()),
                    ("iteration".to_string(), iteration.into()),
                    ("rule".to_string(), d.rule.into()),
                    ("dropped".to_string(), d.dropped.into()),
                    ("measure".to_string(), d.measure.into()),
                ],
            );
            if d.dropped {
                let pair = (d.attr.clone(), d.value.clone());
                self.seen.insert(pair.clone());
                self.last_drop
                    .insert(pair, (format!("veto:{}", d.rule), iteration));
            }
        }
    }

    /// Records the semantic pass's per-pair verdicts.
    pub fn record_semantic(
        &mut self,
        iteration: usize,
        threshold: f64,
        decisions: &[SemanticDecision],
    ) {
        if !self.active {
            return;
        }
        for d in decisions {
            let mut fields = vec![
                ("attr".to_string(), d.attr.clone().into()),
                ("value".to_string(), d.value.clone().into()),
                ("iteration".to_string(), iteration.into()),
                ("in_core".to_string(), d.in_core.into()),
                ("kept".to_string(), d.kept.into()),
                ("threshold".to_string(), threshold.into()),
            ];
            if let Some(sim) = d.similarity {
                fields.push(("similarity".to_string(), sim.into()));
            }
            pae_obs::provenance("prov.semantic", fields);
            if !d.kept {
                let pair = (d.attr.clone(), d.value.clone());
                self.seen.insert(pair.clone());
                self.last_drop
                    .insert(pair, ("semantic".to_string(), iteration));
            }
        }
    }

    /// Records human corrections applied to the cycle's output:
    /// `before` is the pool [`Corrections::apply_to_triples`] received.
    pub fn record_corrections(
        &mut self,
        iteration: usize,
        before: &[Triple],
        corrections: &Corrections,
    ) {
        if !self.active {
            return;
        }
        let present: BTreeSet<Pair> = before
            .iter()
            .map(|t| (t.attr.clone(), t.value.clone()))
            .collect();
        let vetoed: BTreeSet<Pair> = corrections
            .veto_pairs
            .iter()
            .map(|(a, v)| (a.clone(), v.clone()))
            .collect();
        let rewrites: BTreeMap<Pair, &str> = corrections
            .rewrite_pairs
            .iter()
            .map(|(a, from, to)| ((a.clone(), from.clone()), to.as_str()))
            .collect();
        for pair in &present {
            if vetoed.contains(pair) {
                pae_obs::provenance(
                    "prov.correction",
                    vec![
                        ("attr".to_string(), pair.0.clone().into()),
                        ("value".to_string(), pair.1.clone().into()),
                        ("iteration".to_string(), iteration.into()),
                        ("action".to_string(), "veto".into()),
                    ],
                );
                self.last_drop
                    .insert(pair.clone(), ("corrections".to_string(), iteration));
            } else if let Some(&to) = rewrites.get(pair) {
                pae_obs::provenance(
                    "prov.correction",
                    vec![
                        ("attr".to_string(), pair.0.clone().into()),
                        ("value".to_string(), pair.1.clone().into()),
                        ("iteration".to_string(), iteration.into()),
                        ("action".to_string(), "rewrite".into()),
                        ("new_value".to_string(), to.into()),
                    ],
                );
                self.rewritten
                    .insert(pair.clone(), (to.to_string(), iteration));
                let target = (pair.0.clone(), to.to_string());
                if !self.seen.contains(&target) {
                    self.emit_origin(
                        &target,
                        "correction",
                        iteration,
                        None,
                        &BTreeSet::new(),
                        None,
                        None,
                    );
                }
            }
        }
    }

    /// Emits one `prov.disposition` per pair ever seen: `kept` (in the
    /// final triples), `rewritten` (folded into another value by a
    /// human), or `dropped` with the last decisive stage — or
    /// `"not-extracted"` for training-only vocabulary (diversified
    /// table values no tagger ever produced).
    pub fn finish(&mut self, final_triples: &[Triple]) {
        if !self.active {
            return;
        }
        let final_pairs: BTreeSet<Pair> = final_triples
            .iter()
            .map(|t| (t.attr.clone(), t.value.clone()))
            .collect();
        for pair in &self.seen {
            let mut rewritten_to: Option<&str> = None;
            let (fate, stage, iteration) = if final_pairs.contains(pair) {
                ("kept", String::new(), 0usize)
            } else if let Some((to, iter)) = self.rewritten.get(pair) {
                rewritten_to = Some(to);
                ("rewritten", "corrections".to_string(), *iter)
            } else {
                match self.last_drop.get(pair) {
                    Some((stage, iter)) => ("dropped", stage.clone(), *iter),
                    None => ("dropped", "not-extracted".to_string(), 0),
                }
            };
            let mut fields = vec![
                ("attr".to_string(), pair.0.clone().into()),
                ("value".to_string(), pair.1.clone().into()),
                ("fate".to_string(), fate.into()),
                ("stage".to_string(), stage.into()),
                ("iteration".to_string(), iteration.into()),
            ];
            if let Some(to) = rewritten_to {
                fields.push(("rewritten_to".to_string(), to.into()));
            }
            pae_obs::provenance("prov.disposition", fields);
        }
    }

    /// Emits `prov.origin` and marks the pair seen.
    #[allow(clippy::too_many_arguments)]
    fn emit_origin(
        &mut self,
        pair: &Pair,
        origin: &str,
        iteration: usize,
        backend: Option<&str>,
        products: &BTreeSet<u32>,
        conf_crf: Option<f64>,
        conf_rnn: Option<f64>,
    ) {
        let mut fields: Vec<(String, FieldValue)> = vec![
            ("attr".to_string(), pair.0.clone().into()),
            ("value".to_string(), pair.1.clone().into()),
            ("origin".to_string(), origin.into()),
            ("iteration".to_string(), iteration.into()),
        ];
        if let Some(backend) = backend {
            fields.push(("backend".to_string(), backend.into()));
        }
        fields.push(("products".to_string(), products.len().into()));
        if !products.is_empty() {
            let ids: Vec<String> = products
                .iter()
                .take(MAX_PRODUCT_IDS)
                .map(|p| p.to_string())
                .collect();
            fields.push(("product_ids".to_string(), ids.join(",").into()));
        }
        push_conf(&mut fields, conf_crf, conf_rnn);
        pae_obs::provenance("prov.origin", fields);
        self.seen.insert(pair.clone());
    }
}

impl Default for ProvLog {
    fn default() -> Self {
        Self::new()
    }
}

fn push_conf(fields: &mut Vec<(String, FieldValue)>, crf: Option<f64>, rnn: Option<f64>) {
    if let Some(c) = crf {
        fields.push(("conf_crf".to_string(), c.into()));
    }
    if let Some(c) = rnn {
        fields.push(("conf_rnn".to_string(), c.into()));
    }
}
