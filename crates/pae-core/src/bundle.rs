//! Versioned on-disk form of a [`FrozenModel`]: one self-describing,
//! byte-deterministic artifact.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "PAEB" | schema_version u32 | content_hash u64 | n_sections u32
//! [ section id u32 | payload offset u64 | payload len u64 ] * n_sections
//! payload bytes (concatenated sections)
//! ```
//!
//! `content_hash` is FNV-1a (64-bit) over the payload, so two bundles
//! with identical frozen state are byte-identical and corruption
//! anywhere in the payload is caught before decoding. Readers validate
//! magic, schema version, hash, section table shape, and every
//! section's internal structure (strict: trailing bytes are an error) —
//! a bad bundle is always a typed [`BundleError`], never a panic.
//!
//! Section inventory (ids are stable; adding a section bumps the
//! schema version): 1 meta, 2 attrs, 3 lexicon, 4 tagger, 5 veto
//! blocklist, 6 semantic freeze.

use std::path::Path;

use pae_synth::Language;
use pae_text::{Lexicon, PosTag};

use crate::cleaning::SemanticFreeze;
use crate::frozen::{ConfigEcho, FrozenModel, FrozenTagger};

/// Leading magic bytes of every bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"PAEB";
/// Current bundle schema version.
pub const BUNDLE_SCHEMA_VERSION: u32 = 1;

const SEC_META: u32 = 1;
const SEC_ATTRS: u32 = 2;
const SEC_LEXICON: u32 = 3;
const SEC_TAGGER: u32 = 4;
const SEC_VETO: u32 = 5;
const SEC_SEMANTIC: u32 = 6;
const SECTION_IDS: [u32; 6] = [
    SEC_META,
    SEC_ATTRS,
    SEC_LEXICON,
    SEC_TAGGER,
    SEC_VETO,
    SEC_SEMANTIC,
];

/// Why a bundle could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// The file does not start with [`BUNDLE_MAGIC`].
    BadMagic,
    /// The schema version is not [`BUNDLE_SCHEMA_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The payload does not hash to the header's content hash.
    HashMismatch {
        /// Hash recorded in the header.
        expected: u64,
        /// Hash of the actual payload.
        actual: u64,
    },
    /// The document ends before a declared structure is complete.
    Truncated(String),
    /// A structurally invalid document (bad section table, invalid
    /// enum tag, non-UTF-8 string, trailing bytes, …).
    Malformed(String),
    /// Filesystem error (includes the overwrite refusal from
    /// [`pae_obs::reserve_output`]).
    Io(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a PAE bundle (bad magic)"),
            BundleError::UnsupportedVersion { found } => write!(
                f,
                "unsupported bundle schema version {found} (this build reads \
                 version {BUNDLE_SCHEMA_VERSION})"
            ),
            BundleError::HashMismatch { expected, actual } => write!(
                f,
                "bundle content hash mismatch: header says {expected:016x}, \
                 payload hashes to {actual:016x}"
            ),
            BundleError::Truncated(what) => write!(f, "truncated bundle: {what}"),
            BundleError::Malformed(what) => write!(f, "malformed bundle: {what}"),
            BundleError::Io(e) => write!(f, "bundle I/O error: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// FNV-1a 64-bit over `bytes` (the bundle's content hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Primitive writers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f32(out, v);
    }
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Primitive reader with strict bounds checking.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BundleError> {
        if n > self.remaining() {
            return Err(BundleError::Truncated(format!(
                "{what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, BundleError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, BundleError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, BundleError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A declared element count, sanity-bounded by the remaining bytes
    /// (each element occupies at least `min_elem_bytes`), so a corrupt
    /// length can never drive an allocation beyond the document size.
    fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, BundleError> {
        let n = self.u64(what)?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(BundleError::Truncated(format!(
                "{what}: declared {n} elements, space for at most {cap}"
            )));
        }
        Ok(n as usize)
    }

    fn f32(&mut self, what: &str) -> Result<f32, BundleError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, BundleError> {
        let n = self.len(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32(what)?);
        }
        Ok(out)
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, BundleError> {
        let n = self.len(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()));
        }
        Ok(out)
    }

    fn string(&mut self, what: &str) -> Result<String, BundleError> {
        let n = self.len(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| BundleError::Malformed(format!("{what}: invalid UTF-8")))
    }

    fn finish(&self, what: &str) -> Result<(), BundleError> {
        if self.remaining() != 0 {
            return Err(BundleError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Section codecs.

fn language_tag(l: Language) -> u8 {
    match l {
        Language::Agglut => 0,
        Language::SpaceDelim => 1,
    }
}

fn language_from(tag: u8) -> Result<Language, BundleError> {
    match tag {
        0 => Ok(Language::Agglut),
        1 => Ok(Language::SpaceDelim),
        other => Err(BundleError::Malformed(format!(
            "unknown language tag {other}"
        ))),
    }
}

fn encode_meta(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(language_tag(m.language));
    out.push(u8::from(m.use_veto));
    put_u64(&mut out, m.max_value_chars as u64);
    put_u64(&mut out, m.config.iterations as u64);
    put_u64(&mut out, m.config.seed);
    put_str(&mut out, &m.config.tagger);
    out
}

fn encode_attrs(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.attrs.len() as u64);
    for a in &m.attrs {
        put_str(&mut out, a);
    }
    out
}

fn encode_lexicon(m: &FrozenModel) -> Vec<u8> {
    let mut entries: Vec<(&str, PosTag)> = m.lexicon.iter().collect();
    entries.sort_by_key(|&(w, _)| w);
    let mut out = Vec::new();
    put_u64(&mut out, entries.len() as u64);
    for (word, tag) in entries {
        put_str(&mut out, word);
        out.push(tag.index() as u8);
    }
    out
}

fn encode_tagger_into(out: &mut Vec<u8>, t: &FrozenTagger) {
    match t {
        FrozenTagger::Crf {
            n_labels,
            params,
            feature_names,
            window,
            max_sentence_bucket,
        } => {
            out.push(0);
            put_u64(out, *n_labels as u64);
            put_u64(out, *window as u64);
            put_u64(out, *max_sentence_bucket as u64);
            put_f64s(out, params);
            put_u64(out, feature_names.len() as u64);
            for name in feature_names {
                put_str(out, name);
            }
        }
        FrozenTagger::Rnn { bytes } => {
            out.push(1);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        FrozenTagger::Ensemble { crf, rnn } => {
            out.push(2);
            encode_tagger_into(out, crf);
            encode_tagger_into(out, rnn);
        }
    }
}

fn encode_veto(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.veto_blocklist.len() as u64);
    for (attr, value) in &m.veto_blocklist {
        put_str(&mut out, attr);
        put_str(&mut out, value);
    }
    out
}

fn encode_semantic(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    let Some(s) = &m.semantic else {
        out.push(0);
        return out;
    };
    out.push(1);
    put_u64(&mut out, s.dim as u64);
    put_f32(&mut out, s.keep_threshold);
    put_f32s(&mut out, &s.mean);
    put_u64(&mut out, s.vectors.len() as u64);
    for (word, vec) in &s.vectors {
        put_str(&mut out, word);
        put_f32s(&mut out, vec);
    }
    put_u64(&mut out, s.cores.len() as u64);
    for (attr, members) in &s.cores {
        put_str(&mut out, attr);
        put_u64(&mut out, members.len() as u64);
        for mem in members {
            put_str(&mut out, mem);
        }
    }
    out
}

fn decode_tagger(r: &mut Reader, depth: usize) -> Result<FrozenTagger, BundleError> {
    match r.u8("tagger kind")? {
        0 => {
            let n_labels = r.u64("crf n_labels")? as usize;
            let window = r.u64("crf window")? as usize;
            let max_sentence_bucket = r.u64("crf sentence bucket")? as usize;
            let params = r.f64s("crf params")?;
            let n_names = r.len(8, "crf feature count")?;
            let mut feature_names = Vec::with_capacity(n_names);
            for _ in 0..n_names {
                feature_names.push(r.string("crf feature name")?);
            }
            let expected = pae_crf::CrfModel::param_len(feature_names.len(), n_labels);
            if params.len() != expected {
                return Err(BundleError::Malformed(format!(
                    "CRF parameter vector has {} entries, expected {expected}",
                    params.len()
                )));
            }
            Ok(FrozenTagger::Crf {
                n_labels,
                params,
                feature_names,
                window,
                max_sentence_bucket,
            })
        }
        1 => {
            let n = r.len(1, "rnn byte length")?;
            let bytes = r.take(n, "rnn bytes")?.to_vec();
            // Validate eagerly: a bundle must never defer a decode
            // failure to serve time.
            pae_neural::BiLstmTagger::from_bytes(&bytes)
                .map_err(|e| BundleError::Malformed(format!("rnn tagger: {e}")))?;
            Ok(FrozenTagger::Rnn { bytes })
        }
        2 if depth == 0 => Ok(FrozenTagger::Ensemble {
            crf: Box::new(decode_tagger(r, 1)?),
            rnn: Box::new(decode_tagger(r, 1)?),
        }),
        2 => Err(BundleError::Malformed("nested ensemble tagger".to_owned())),
        other => Err(BundleError::Malformed(format!(
            "unknown tagger kind {other}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Whole-bundle encode/decode.

/// Serializes a frozen model into bundle bytes. Deterministic: equal
/// models produce byte-identical bundles.
pub fn encode(model: &FrozenModel) -> Vec<u8> {
    let mut tagger = Vec::new();
    encode_tagger_into(&mut tagger, &model.tagger);
    let sections: [(u32, Vec<u8>); 6] = [
        (SEC_META, encode_meta(model)),
        (SEC_ATTRS, encode_attrs(model)),
        (SEC_LEXICON, encode_lexicon(model)),
        (SEC_TAGGER, tagger),
        (SEC_VETO, encode_veto(model)),
        (SEC_SEMANTIC, encode_semantic(model)),
    ];
    let mut payload = Vec::new();
    let mut table = Vec::new();
    for (id, bytes) in &sections {
        table.push((*id, payload.len() as u64, bytes.len() as u64));
        payload.extend_from_slice(bytes);
    }
    let mut out = Vec::with_capacity(16 + table.len() * 20 + payload.len());
    out.extend_from_slice(&BUNDLE_MAGIC);
    put_u32(&mut out, BUNDLE_SCHEMA_VERSION);
    put_u64(&mut out, fnv1a(&payload));
    put_u32(&mut out, table.len() as u32);
    for (id, offset, len) in table {
        put_u32(&mut out, id);
        put_u64(&mut out, offset);
        put_u64(&mut out, len);
    }
    out.extend_from_slice(&payload);
    out
}

/// Parses and validates bundle bytes back into a [`FrozenModel`].
pub fn decode(bytes: &[u8]) -> Result<FrozenModel, BundleError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic").map_err(|_| BundleError::BadMagic)? != BUNDLE_MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = r.u32("schema version")?;
    if version != BUNDLE_SCHEMA_VERSION {
        return Err(BundleError::UnsupportedVersion { found: version });
    }
    let declared_hash = r.u64("content hash")?;
    let n_sections = r.u32("section count")? as usize;
    if n_sections != SECTION_IDS.len() {
        return Err(BundleError::Malformed(format!(
            "expected {} sections, header declares {n_sections}",
            SECTION_IDS.len()
        )));
    }
    let mut table = Vec::with_capacity(n_sections);
    for (i, &want) in SECTION_IDS.iter().enumerate() {
        let id = r.u32("section id")?;
        let offset = r.u64("section offset")?;
        let len = r.u64("section length")?;
        if id != want {
            return Err(BundleError::Malformed(format!(
                "section {i} has id {id}, expected {want}"
            )));
        }
        table.push((offset, len));
    }
    let payload = &bytes[r.pos..];
    let actual_hash = fnv1a(payload);
    if actual_hash != declared_hash {
        return Err(BundleError::HashMismatch {
            expected: declared_hash,
            actual: actual_hash,
        });
    }
    // Sections must tile the payload exactly, in order.
    let mut cursor = 0u64;
    for (i, &(offset, len)) in table.iter().enumerate() {
        if offset != cursor {
            return Err(BundleError::Malformed(format!(
                "section {i} starts at {offset}, expected {cursor}"
            )));
        }
        cursor = offset
            .checked_add(len)
            .ok_or_else(|| BundleError::Malformed("section extent overflows".to_owned()))?;
    }
    if cursor != payload.len() as u64 {
        return Err(BundleError::Malformed(format!(
            "sections cover {cursor} bytes, payload has {}",
            payload.len()
        )));
    }
    let section = |i: usize| {
        let (offset, len) = table[i];
        &payload[offset as usize..(offset + len) as usize]
    };

    // Meta.
    let mut r = Reader::new(section(0));
    let language = language_from(r.u8("language tag")?)?;
    let use_veto = match r.u8("use_veto flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(BundleError::Malformed(format!(
                "invalid use_veto flag {other}"
            )))
        }
    };
    let max_value_chars = r.u64("max_value_chars")? as usize;
    let iterations = r.u64("iterations")? as usize;
    let seed = r.u64("seed")?;
    let tagger_name = r.string("tagger name")?;
    r.finish("meta section")?;

    // Attrs.
    let mut r = Reader::new(section(1));
    let n_attrs = r.len(8, "attr count")?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        attrs.push(r.string("attr name")?);
    }
    r.finish("attrs section")?;

    // Lexicon.
    let mut r = Reader::new(section(2));
    let n_words = r.len(9, "lexicon entry count")?;
    let mut entries = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        let word = r.string("lexicon word")?;
        let tag = r.u8("lexicon tag")? as usize;
        if tag >= PosTag::ALL.len() {
            return Err(BundleError::Malformed(format!(
                "invalid PoS tag index {tag}"
            )));
        }
        entries.push((word, PosTag::from_index(tag)));
    }
    r.finish("lexicon section")?;
    let lexicon = Lexicon::from_entries(entries);

    // Tagger.
    let mut r = Reader::new(section(3));
    let tagger = decode_tagger(&mut r, 0)?;
    r.finish("tagger section")?;

    // Veto blocklist.
    let mut r = Reader::new(section(4));
    let n_blocked = r.len(16, "blocklist entry count")?;
    let mut veto_blocklist = Vec::with_capacity(n_blocked);
    for _ in 0..n_blocked {
        let attr = r.string("blocklist attr")?;
        let value = r.string("blocklist value")?;
        veto_blocklist.push((attr, value));
    }
    r.finish("veto section")?;

    // Semantic freeze.
    let mut r = Reader::new(section(5));
    let semantic = match r.u8("semantic presence flag")? {
        0 => None,
        1 => {
            let dim = r.u64("semantic dim")? as usize;
            let keep_threshold = r.f32("keep threshold")?;
            let mean = r.f32s("semantic mean")?;
            if mean.len() != dim {
                return Err(BundleError::Malformed(format!(
                    "semantic mean has {} entries, dim is {dim}",
                    mean.len()
                )));
            }
            let n_vecs = r.len(12, "vector count")?;
            let mut vectors = Vec::with_capacity(n_vecs);
            for _ in 0..n_vecs {
                let word = r.string("vector word")?;
                let vec = r.f32s("vector values")?;
                if vec.len() != dim {
                    return Err(BundleError::Malformed(format!(
                        "vector for {word:?} has {} entries, dim is {dim}",
                        vec.len()
                    )));
                }
                vectors.push((word, vec));
            }
            let n_cores = r.len(16, "core count")?;
            let mut cores = Vec::with_capacity(n_cores);
            for _ in 0..n_cores {
                let attr = r.string("core attr")?;
                let n_members = r.len(8, "core member count")?;
                let mut members = Vec::with_capacity(n_members);
                for _ in 0..n_members {
                    members.push(r.string("core member")?);
                }
                cores.push((attr, members));
            }
            Some(SemanticFreeze {
                dim,
                mean,
                vectors,
                cores,
                keep_threshold,
            })
        }
        other => {
            return Err(BundleError::Malformed(format!(
                "invalid semantic presence flag {other}"
            )))
        }
    };
    r.finish("semantic section")?;

    Ok(FrozenModel {
        language,
        lexicon,
        attrs,
        tagger,
        use_veto,
        max_value_chars,
        veto_blocklist,
        semantic,
        config: ConfigEcho {
            iterations,
            seed,
            tagger: tagger_name,
        },
    })
}

/// The content hash a bundle's header declares (validating magic and
/// version first). Cheap: does not decode or re-hash the payload.
pub fn declared_hash(bytes: &[u8]) -> Result<u64, BundleError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic").map_err(|_| BundleError::BadMagic)? != BUNDLE_MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = r.u32("schema version")?;
    if version != BUNDLE_SCHEMA_VERSION {
        return Err(BundleError::UnsupportedVersion { found: version });
    }
    r.u64("content hash")
}

/// Writes `model` to `path`, refusing to overwrite an existing file
/// unless `force` (the same create-new semantics as the CLI's trace
/// outputs). Returns the bundle's content hash.
pub fn write_bundle(model: &FrozenModel, path: &Path, force: bool) -> Result<u64, BundleError> {
    use std::io::Write as _;
    let bytes = encode(model);
    let hash = declared_hash(&bytes).expect("fresh bundle has a valid header");
    if force {
        std::fs::write(path, &bytes).map_err(|e| BundleError::Io(e.to_string()))?;
    } else {
        let mut f = pae_obs::reserve_output(path).map_err(BundleError::Io)?;
        f.write_all(&bytes)
            .and_then(|()| f.flush())
            .map_err(|e| BundleError::Io(e.to_string()))?;
    }
    Ok(hash)
}

/// Reads and validates a bundle from `path`.
pub fn read_bundle(path: &Path) -> Result<FrozenModel, BundleError> {
    read_bundle_with_hash(path).map(|(model, _)| model)
}

/// Reads and validates a bundle from `path`, also returning its
/// declared (and verified) content hash so servers can report which
/// exact bundle they loaded without re-reading the file.
pub fn read_bundle_with_hash(path: &Path) -> Result<(FrozenModel, u64), BundleError> {
    let bytes =
        std::fs::read(path).map_err(|e| BundleError::Io(format!("{}: {e}", path.display())))?;
    let hash = declared_hash(&bytes)?;
    decode(&bytes).map(|model| (model, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapPipeline;
    use crate::config::{PipelineConfig, TaggerKind};
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, DatasetSpec};

    fn frozen_model(kind: TaggerKind) -> FrozenModel {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(50)
            .generate();
        let corpus = parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: kind,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze")
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let model = frozen_model(TaggerKind::Crf);
        let bytes = encode(&model);
        let restored = decode(&bytes).expect("decode");
        assert_eq!(model, restored);
        // Re-encoding the decoded model reproduces the bytes exactly,
        // and encoding is deterministic call to call.
        assert_eq!(encode(&restored), bytes);
        assert_eq!(encode(&model), bytes);
        assert_eq!(declared_hash(&bytes).unwrap(), fnv1a(&bytes[20 + 6 * 20..]));
    }

    #[test]
    fn ensemble_round_trips() {
        let model = frozen_model(TaggerKind::Ensemble);
        let bytes = encode(&model);
        let restored = decode(&bytes).expect("decode");
        assert_eq!(model, restored);
        assert!(matches!(restored.tagger, FrozenTagger::Ensemble { .. }));
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let model = frozen_model(TaggerKind::Crf);
        let bytes = encode(&model);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad), Err(BundleError::BadMagic));

        // Wrong schema version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            decode(&bad),
            Err(BundleError::UnsupportedVersion { found: 99 })
        ));

        // Payload corruption → hash mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            decode(&bad),
            Err(BundleError::HashMismatch { .. })
        ));

        // Truncation anywhere must be an error (never a panic). Step by
        // a prime so the loop samples many offsets without being slow.
        let mut cut = 0;
        while cut < bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "decode succeeded at {cut}");
            cut += 131;
        }
        assert!(decode(&[]).is_err());

        // Trailing garbage after the payload → hash covers it? No — the
        // hash covers the declared payload slice, so extra bytes extend
        // that slice and break the hash.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn file_round_trip_respects_overwrite_guard() {
        let model = frozen_model(TaggerKind::Crf);
        let dir = std::env::temp_dir().join(format!("pae-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.paeb");
        let _ = std::fs::remove_file(&path);

        let hash = write_bundle(&model, &path, false).expect("first write");
        let restored = read_bundle(&path).expect("read");
        assert_eq!(model, restored);
        assert_eq!(declared_hash(&std::fs::read(&path).unwrap()).unwrap(), hash);

        // Second non-forced write must refuse.
        let err = write_bundle(&model, &path, false).unwrap_err();
        assert!(matches!(&err, BundleError::Io(msg) if msg.contains("refusing to overwrite")));
        // Forced write succeeds and is byte-identical.
        let hash2 = write_bundle(&model, &path, true).expect("forced write");
        assert_eq!(hash, hash2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
