//! Versioned on-disk form of a [`FrozenModel`]: one self-describing,
//! byte-deterministic artifact.
//!
//! Schema v3 layout (all integers little-endian):
//!
//! ```text
//! magic "PAEB" | schema_version u32 (=3) | content_hash u64 | n_sections u32
//! [ id u32 | reserved u32 | payload offset u64 | len u64 | fnv1a_words(section) u64 ] * 7
//! pad to 8-byte boundary
//! payload: sections at 8-byte-aligned offsets, zero-padded between
//! ```
//!
//! v3 is v2 plus one trailing section (id 7): the freeze-time
//! [`ReferenceStats`] the serving quality monitor scores live traffic
//! against. The section body starts with a presence flag (like the
//! semantic section), so a model without reference stats still encodes
//! deterministically; v2 bundles (6 sections) still load, reporting
//! [`LoadedBundle::reference`] as `None` — "no-reference" serving mode.
//! [`encode_v2`] is kept as a writer for compatibility fixtures.
//!
//! v2 stores the string dictionaries — segmentation/PoS lexicon, CRF
//! feature vocabulary, veto blocklist — as flat [`pae_fst`] double-array
//! arenas. [`LoadedBundle::open`] validates the header, the section
//! table, and every per-section hash (word-folded FNV-1a,
//! [`fnv1a_words`]), but decodes nothing;
//! [`LoadedBundle::extractor`] then *borrows* the arenas straight out
//! of the loaded bytes (`Arc<[u8]>` sub-ranges), so cold-start cost is
//! hash + offset validation plus one bulk copy of the numeric CRF
//! parameters — no per-string allocation, no hash-map interning.
//! `content_hash` is FNV-1a over the section table (whose entries embed
//! the per-section hashes), making it a cheap transitive identity for
//! the whole payload.
//!
//! Schema v1 (`[ id | offset | len ]` table, `content_hash` over the
//! payload, length-prefixed strings everywhere) is still read via the
//! legacy eager-deserialize path; [`encode_v1`] is kept as a writer for
//! compatibility fixtures. Readers validate magic, schema version,
//! hashes, section table shape, and every section's internal structure
//! (strict: trailing bytes are an error) — a bad bundle is always a
//! typed [`BundleError`], never a panic.
//!
//! Section inventory (ids are stable; adding a section bumps the
//! schema version): 1 meta, 2 attrs, 3 lexicon, 4 tagger, 5 veto
//! blocklist, 6 semantic freeze, 7 reference stats (v3+).

use std::path::Path;
use std::sync::Arc;

use pae_fst::Fst;
use pae_synth::Language;
use pae_text::{Lexicon, PosTag};

use crate::cleaning::SemanticFreeze;
use crate::frozen::{
    assemble_extractor, blocklist_key, crf_tagger_from_parts, Blocklist, ConfigEcho,
    ExtractBackend, FrozenExtractor, FrozenModel, FrozenTagger,
};
use crate::quality::{AttrReference, BackendReference, ReferenceStats, CONF_BUCKETS, LEN_BUCKETS};
use crate::tagger::TrainedTagger;

/// Leading magic bytes of every bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"PAEB";
/// Current bundle schema version (v2 + the reference-stats section).
pub const BUNDLE_SCHEMA_VERSION: u32 = 3;
/// The previous tabled schema (no reference-stats section); still read,
/// and still written by [`encode_v2`] for compatibility fixtures.
pub const BUNDLE_SCHEMA_V2: u32 = 2;
/// The legacy eager-deserialize schema this build still reads.
pub const BUNDLE_SCHEMA_V1: u32 = 1;

/// Fixed header size shared by all schemas.
const HEADER_BYTES: usize = 20;
/// Tabled (v2+) section-table entry: id u32 | reserved u32 | offset u64 | len u64 | hash u64.
const V2_ENTRY_BYTES: usize = 32;

const SEC_META: u32 = 1;
const SEC_ATTRS: u32 = 2;
const SEC_LEXICON: u32 = 3;
const SEC_TAGGER: u32 = 4;
const SEC_VETO: u32 = 5;
const SEC_SEMANTIC: u32 = 6;
const SEC_REFERENCE: u32 = 7;
/// Section inventory of the current (v3) schema.
const SECTION_IDS: [u32; 7] = [
    SEC_META,
    SEC_ATTRS,
    SEC_LEXICON,
    SEC_TAGGER,
    SEC_VETO,
    SEC_SEMANTIC,
    SEC_REFERENCE,
];
/// Section inventory of schema v2 (everything but reference stats).
const V2_SECTION_IDS: [u32; 6] = [
    SEC_META,
    SEC_ATTRS,
    SEC_LEXICON,
    SEC_TAGGER,
    SEC_VETO,
    SEC_SEMANTIC,
];

/// First payload byte of a tabled bundle: header + table, rounded up
/// to 8.
const fn payload_start(n_sections: usize) -> usize {
    (HEADER_BYTES + n_sections * V2_ENTRY_BYTES + 7) & !7
}

/// Why a bundle could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// The file does not start with [`BUNDLE_MAGIC`].
    BadMagic,
    /// The schema version is none of [`BUNDLE_SCHEMA_VERSION`],
    /// [`BUNDLE_SCHEMA_V2`], or [`BUNDLE_SCHEMA_V1`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A region does not hash to its declared hash (the v1 payload, the
    /// v2 section table, or a v2 section).
    HashMismatch {
        /// Hash recorded in the header or section table.
        expected: u64,
        /// Hash of the actual bytes.
        actual: u64,
    },
    /// The document ends before a declared structure is complete.
    Truncated(String),
    /// A structurally invalid document (bad section table, invalid
    /// enum tag, non-UTF-8 string, trailing bytes, …).
    Malformed(String),
    /// Filesystem error (includes the overwrite refusal from
    /// [`pae_obs::reserve_output`]).
    Io(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a PAE bundle (bad magic)"),
            BundleError::UnsupportedVersion { found } => write!(
                f,
                "unsupported bundle schema version {found} (this build reads \
                 versions {BUNDLE_SCHEMA_V1} through {BUNDLE_SCHEMA_VERSION})"
            ),
            BundleError::HashMismatch { expected, actual } => write!(
                f,
                "bundle content hash mismatch: declared {expected:016x}, \
                 bytes hash to {actual:016x}"
            ),
            BundleError::Truncated(what) => write!(f, "truncated bundle: {what}"),
            BundleError::Malformed(what) => write!(f, "malformed bundle: {what}"),
            BundleError::Io(e) => write!(f, "bundle I/O error: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// FNV-1a 64-bit over `bytes` (the bundle's content hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit with an 8-byte input unit: same offset basis, prime,
/// and xor-multiply mixing, but folding one little-endian u64 word per
/// step (tail zero-padded). The schema-v2 **section** hashes use this
/// variant — the byte-at-a-time loop is a serial multiply per byte
/// (≈1 ns/byte), which made the load-time integrity pass the dominant
/// cold-start cost; folding words cuts the dependency chain 8× so
/// validation runs at memory speed. Bit-flip detection is unchanged:
/// any corrupted byte lands in some word and perturbs every later
/// state. Inputs differing only in trailing zero bytes can collide
/// (the tail is zero-padded), which is fine for section hashing: the
/// section *length* is committed separately in the table entry, so the
/// `(len, hash)` pair still pins the content. (The v1 payload hash and
/// the v2 *table* hash keep plain [`fnv1a`]: v1 is a frozen format,
/// and the table is 192 bytes.)
pub fn fnv1a_words(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Primitive writers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f32(out, v);
    }
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Zero-pads `out` to the next 8-byte boundary.
fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

// ---------------------------------------------------------------------
// Primitive reader with strict bounds checking.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BundleError> {
        if n > self.remaining() {
            return Err(BundleError::Truncated(format!(
                "{what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, BundleError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, BundleError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, BundleError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A declared element count, sanity-bounded by the remaining bytes
    /// (each element occupies at least `min_elem_bytes`), so a corrupt
    /// length can never drive an allocation beyond the document size.
    fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, BundleError> {
        let n = self.u64(what)?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(BundleError::Truncated(format!(
                "{what}: declared {n} elements, space for at most {cap}"
            )));
        }
        Ok(n as usize)
    }

    fn f32(&mut self, what: &str) -> Result<f32, BundleError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, BundleError> {
        let n = self.len(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32(what)?);
        }
        Ok(out)
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, BundleError> {
        let n = self.len(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()));
        }
        Ok(out)
    }

    fn u64s(&mut self, what: &str) -> Result<Vec<u64>, BundleError> {
        let n = self.len(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    fn string(&mut self, what: &str) -> Result<String, BundleError> {
        let n = self.len(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| BundleError::Malformed(format!("{what}: invalid UTF-8")))
    }

    fn finish(&self, what: &str) -> Result<(), BundleError> {
        if self.remaining() != 0 {
            return Err(BundleError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Bounded cursor over a loaded bundle's shared bytes: like [`Reader`],
/// but able to carve [`Fst`] sub-ranges that keep the whole buffer
/// alive via its `Arc` instead of copying the arena.
struct ArcReader<'a> {
    bytes: &'a Arc<[u8]>,
    pos: usize,
    end: usize,
}

impl<'a> ArcReader<'a> {
    fn new(bytes: &'a Arc<[u8]>, start: usize, len: usize) -> Self {
        ArcReader {
            bytes,
            pos: start,
            end: start + len,
        }
    }

    fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BundleError> {
        if n > self.remaining() {
            return Err(BundleError::Truncated(format!(
                "{what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, BundleError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Bulk-decodes a length-prefixed `f64` array (the hot path when
    /// loading CRF parameters: one bounds check, then `chunks_exact`).
    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, BundleError> {
        let n = self.u64(what)? as usize;
        let need = n
            .checked_mul(8)
            .ok_or_else(|| BundleError::Malformed(format!("{what}: element count overflows")))?;
        let raw = self.take(need, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed FST arena as a zero-copy sub-range of
    /// the shared buffer. Strict: the declared length must equal the
    /// arena's own header-derived size.
    fn carve_fst(&mut self, what: &str) -> Result<Fst, BundleError> {
        let len = self.u64(what)? as usize;
        if len > self.remaining() {
            return Err(BundleError::Truncated(format!(
                "{what}: arena of {len} bytes, {} left",
                self.remaining()
            )));
        }
        let fst = Fst::from_shared(Arc::clone(self.bytes), self.pos, len)
            .map_err(|e| BundleError::Malformed(format!("{what}: {e}")))?;
        if fst.view().arena_len() != len {
            return Err(BundleError::Malformed(format!(
                "{what}: {} trailing bytes after arena",
                len - fst.view().arena_len()
            )));
        }
        self.pos += len;
        Ok(fst)
    }

    /// Consumes zero padding up to the next 8-byte boundary (positions
    /// are absolute and every v2 section starts 8-aligned).
    fn skip_padding(&mut self, what: &str) -> Result<(), BundleError> {
        let misalign = self.pos % 8;
        if misalign == 0 {
            return Ok(());
        }
        let pad = self.take(8 - misalign, what)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(BundleError::Malformed(format!("{what}: nonzero padding")));
        }
        Ok(())
    }

    fn finish(&self, what: &str) -> Result<(), BundleError> {
        if self.remaining() != 0 {
            return Err(BundleError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Section codecs shared by both schemas.

fn language_tag(l: Language) -> u8 {
    match l {
        Language::Agglut => 0,
        Language::SpaceDelim => 1,
    }
}

fn language_from(tag: u8) -> Result<Language, BundleError> {
    match tag {
        0 => Ok(Language::Agglut),
        1 => Ok(Language::SpaceDelim),
        other => Err(BundleError::Malformed(format!(
            "unknown language tag {other}"
        ))),
    }
}

fn encode_meta(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(language_tag(m.language));
    out.push(u8::from(m.use_veto));
    put_u64(&mut out, m.max_value_chars as u64);
    put_u64(&mut out, m.config.iterations as u64);
    put_u64(&mut out, m.config.seed);
    put_str(&mut out, &m.config.tagger);
    out
}

fn decode_meta(buf: &[u8]) -> Result<(Language, bool, usize, ConfigEcho), BundleError> {
    let mut r = Reader::new(buf);
    let language = language_from(r.u8("language tag")?)?;
    let use_veto = match r.u8("use_veto flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(BundleError::Malformed(format!(
                "invalid use_veto flag {other}"
            )))
        }
    };
    let max_value_chars = r.u64("max_value_chars")? as usize;
    let iterations = r.u64("iterations")? as usize;
    let seed = r.u64("seed")?;
    let tagger = r.string("tagger name")?;
    r.finish("meta section")?;
    Ok((
        language,
        use_veto,
        max_value_chars,
        ConfigEcho {
            iterations,
            seed,
            tagger,
        },
    ))
}

fn encode_attrs(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.attrs.len() as u64);
    for a in &m.attrs {
        put_str(&mut out, a);
    }
    out
}

fn decode_attrs(buf: &[u8]) -> Result<Vec<String>, BundleError> {
    let mut r = Reader::new(buf);
    let n_attrs = r.len(8, "attr count")?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        attrs.push(r.string("attr name")?);
    }
    r.finish("attrs section")?;
    Ok(attrs)
}

fn encode_semantic(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    let Some(s) = &m.semantic else {
        out.push(0);
        return out;
    };
    out.push(1);
    put_u64(&mut out, s.dim as u64);
    put_f32(&mut out, s.keep_threshold);
    put_f32s(&mut out, &s.mean);
    put_u64(&mut out, s.vectors.len() as u64);
    for (word, vec) in &s.vectors {
        put_str(&mut out, word);
        put_f32s(&mut out, vec);
    }
    put_u64(&mut out, s.cores.len() as u64);
    for (attr, members) in &s.cores {
        put_str(&mut out, attr);
        put_u64(&mut out, members.len() as u64);
        for mem in members {
            put_str(&mut out, mem);
        }
    }
    out
}

fn decode_semantic_section(buf: &[u8]) -> Result<Option<SemanticFreeze>, BundleError> {
    let mut r = Reader::new(buf);
    let semantic = match r.u8("semantic presence flag")? {
        0 => None,
        1 => {
            let dim = r.u64("semantic dim")? as usize;
            let keep_threshold = r.f32("keep threshold")?;
            let mean = r.f32s("semantic mean")?;
            if mean.len() != dim {
                return Err(BundleError::Malformed(format!(
                    "semantic mean has {} entries, dim is {dim}",
                    mean.len()
                )));
            }
            let n_vecs = r.len(12, "vector count")?;
            let mut vectors = Vec::with_capacity(n_vecs);
            for _ in 0..n_vecs {
                let word = r.string("vector word")?;
                let vec = r.f32s("vector values")?;
                if vec.len() != dim {
                    return Err(BundleError::Malformed(format!(
                        "vector for {word:?} has {} entries, dim is {dim}",
                        vec.len()
                    )));
                }
                vectors.push((word, vec));
            }
            let n_cores = r.len(16, "core count")?;
            let mut cores = Vec::with_capacity(n_cores);
            for _ in 0..n_cores {
                let attr = r.string("core attr")?;
                let n_members = r.len(8, "core member count")?;
                let mut members = Vec::with_capacity(n_members);
                for _ in 0..n_members {
                    members.push(r.string("core member")?);
                }
                cores.push((attr, members));
            }
            Some(SemanticFreeze {
                dim,
                mean,
                vectors,
                cores,
                keep_threshold,
            })
        }
        other => {
            return Err(BundleError::Malformed(format!(
                "invalid semantic presence flag {other}"
            )))
        }
    };
    r.finish("semantic section")?;
    Ok(semantic)
}

/// Reference-stats section (id 7, v3+): a presence flag, then the
/// freeze-time corpus counters. Integer-only, so encoding is trivially
/// byte-deterministic; per-attribute rates are derived at read time
/// from `triples` and `pages`, never stored as floats.
fn encode_reference(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    let Some(r) = &m.reference else {
        out.push(0);
        return out;
    };
    out.push(1);
    put_u64(&mut out, r.pages);
    put_u64(&mut out, r.empty_pages);
    put_u64(&mut out, r.total_triples);
    put_u64(&mut out, r.tokens);
    put_u64(&mut out, r.oov_tokens);
    put_u64(&mut out, r.backends.len() as u64);
    for b in &r.backends {
        put_str(&mut out, &b.backend);
        put_u64s(&mut out, &b.confidence);
    }
    put_u64(&mut out, r.attrs.len() as u64);
    for a in &r.attrs {
        put_str(&mut out, &a.attribute);
        put_u64(&mut out, a.triples);
        put_u64(&mut out, a.top_values.len() as u64);
        for (value, count) in &a.top_values {
            put_str(&mut out, value);
            put_u64(&mut out, *count);
        }
        put_u64s(&mut out, &a.value_len);
    }
    out
}

fn decode_reference_section(buf: &[u8]) -> Result<Option<ReferenceStats>, BundleError> {
    let mut r = Reader::new(buf);
    let stats = match r.u8("reference presence flag")? {
        0 => None,
        1 => {
            let pages = r.u64("reference pages")?;
            let empty_pages = r.u64("reference empty pages")?;
            let total_triples = r.u64("reference triple count")?;
            let tokens = r.u64("reference token count")?;
            let oov_tokens = r.u64("reference oov count")?;
            let n_backends = r.len(16, "reference backend count")?;
            let mut backends = Vec::with_capacity(n_backends);
            for _ in 0..n_backends {
                let backend = r.string("reference backend name")?;
                let confidence = r.u64s("confidence histogram")?;
                if confidence.len() != CONF_BUCKETS {
                    return Err(BundleError::Malformed(format!(
                        "confidence histogram for {backend:?} has {} buckets, \
                         expected {CONF_BUCKETS}",
                        confidence.len()
                    )));
                }
                backends.push(BackendReference {
                    backend,
                    confidence,
                });
            }
            let n_attrs = r.len(24, "reference attr count")?;
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let attribute = r.string("reference attr name")?;
                let triples = r.u64("reference attr triples")?;
                let n_top = r.len(16, "reference top-value count")?;
                let mut top_values = Vec::with_capacity(n_top);
                for _ in 0..n_top {
                    let value = r.string("reference top value")?;
                    let count = r.u64("reference top count")?;
                    top_values.push((value, count));
                }
                let value_len = r.u64s("value-length histogram")?;
                if value_len.len() != LEN_BUCKETS {
                    return Err(BundleError::Malformed(format!(
                        "value-length histogram for {attribute:?} has {} buckets, \
                         expected {LEN_BUCKETS}",
                        value_len.len()
                    )));
                }
                attrs.push(AttrReference {
                    attribute,
                    triples,
                    top_values,
                    value_len,
                });
            }
            Some(ReferenceStats {
                pages,
                empty_pages,
                total_triples,
                tokens,
                oov_tokens,
                backends,
                attrs,
            })
        }
        other => {
            return Err(BundleError::Malformed(format!(
                "invalid reference presence flag {other}"
            )))
        }
    };
    r.finish("reference section")?;
    Ok(stats)
}

// ---------------------------------------------------------------------
// v1 section codecs (legacy: length-prefixed strings everywhere).

fn encode_lexicon_v1(m: &FrozenModel) -> Vec<u8> {
    let mut entries: Vec<(String, PosTag)> = m.lexicon.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    put_u64(&mut out, entries.len() as u64);
    for (word, tag) in entries {
        put_str(&mut out, &word);
        out.push(tag.index() as u8);
    }
    out
}

fn encode_tagger_v1_into(out: &mut Vec<u8>, t: &FrozenTagger) {
    match t {
        FrozenTagger::Crf {
            n_labels,
            params,
            feature_names,
            window,
            max_sentence_bucket,
        } => {
            out.push(0);
            put_u64(out, *n_labels as u64);
            put_u64(out, *window as u64);
            put_u64(out, *max_sentence_bucket as u64);
            put_f64s(out, params);
            put_u64(out, feature_names.len() as u64);
            for name in feature_names {
                put_str(out, name);
            }
        }
        FrozenTagger::Rnn { bytes } => {
            out.push(1);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        FrozenTagger::Ensemble { crf, rnn } => {
            out.push(2);
            encode_tagger_v1_into(out, crf);
            encode_tagger_v1_into(out, rnn);
        }
    }
}

fn encode_veto_v1(m: &FrozenModel) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.veto_blocklist.len() as u64);
    for (attr, value) in &m.veto_blocklist {
        put_str(&mut out, attr);
        put_str(&mut out, value);
    }
    out
}

fn decode_tagger_v1(r: &mut Reader, depth: usize) -> Result<FrozenTagger, BundleError> {
    match r.u8("tagger kind")? {
        0 => {
            let n_labels = r.u64("crf n_labels")? as usize;
            let window = r.u64("crf window")? as usize;
            let max_sentence_bucket = r.u64("crf sentence bucket")? as usize;
            let params = r.f64s("crf params")?;
            let n_names = r.len(8, "crf feature count")?;
            let mut feature_names = Vec::with_capacity(n_names);
            for _ in 0..n_names {
                feature_names.push(r.string("crf feature name")?);
            }
            let expected = pae_crf::CrfModel::param_len(feature_names.len(), n_labels);
            if params.len() != expected {
                return Err(BundleError::Malformed(format!(
                    "CRF parameter vector has {} entries, expected {expected}",
                    params.len()
                )));
            }
            Ok(FrozenTagger::Crf {
                n_labels,
                params,
                feature_names,
                window,
                max_sentence_bucket,
            })
        }
        1 => {
            let n = r.len(1, "rnn byte length")?;
            let bytes = r.take(n, "rnn bytes")?.to_vec();
            // Validate eagerly: a bundle must never defer a decode
            // failure to serve time.
            pae_neural::BiLstmTagger::from_bytes(&bytes)
                .map_err(|e| BundleError::Malformed(format!("rnn tagger: {e}")))?;
            Ok(FrozenTagger::Rnn { bytes })
        }
        2 if depth == 0 => Ok(FrozenTagger::Ensemble {
            crf: Box::new(decode_tagger_v1(r, 1)?),
            rnn: Box::new(decode_tagger_v1(r, 1)?),
        }),
        2 => Err(BundleError::Malformed("nested ensemble tagger".to_owned())),
        other => Err(BundleError::Malformed(format!(
            "unknown tagger kind {other}"
        ))),
    }
}

// ---------------------------------------------------------------------
// v2 section codecs (flat arenas, 8-aligned records).

fn encode_lexicon_v2(m: &FrozenModel) -> Vec<u8> {
    m.lexicon.compiled().as_bytes().to_vec()
}

/// One tagger record, all fields u64-aligned:
///
/// ```text
/// kind u64 (0 crf | 1 rnn | 2 ensemble)
/// crf:      n_labels u64 | window u64 | sentence_bucket u64
///           | params_len u64 | f64 * params_len
///           | arena_len u64 | feature-name FST arena | pad8
/// rnn:      len u64 | bytes | pad8
/// ensemble: crf record | rnn record
/// ```
fn encode_tagger_v2_into(out: &mut Vec<u8>, t: &FrozenTagger) {
    debug_assert_eq!(out.len() % 8, 0, "tagger records start 8-aligned");
    match t {
        FrozenTagger::Crf {
            n_labels,
            params,
            feature_names,
            window,
            max_sentence_bucket,
        } => {
            put_u64(out, 0);
            put_u64(out, *n_labels as u64);
            put_u64(out, *window as u64);
            put_u64(out, *max_sentence_bucket as u64);
            put_u64(out, params.len() as u64);
            for &p in params {
                out.extend_from_slice(&p.to_le_bytes());
            }
            // Feature name → interned id, keyed by name bytes. The
            // interner guarantees unique names, so the build cannot
            // fail on duplicates.
            let mut pairs: Vec<(&[u8], u32)> = feature_names
                .iter()
                .enumerate()
                .map(|(id, name)| (name.as_bytes(), id as u32))
                .collect();
            pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
            let arena = pae_fst::build_fst(&pairs, 0).expect("unique feature names build");
            put_u64(out, arena.len() as u64);
            out.extend_from_slice(&arena);
            pad8(out);
        }
        FrozenTagger::Rnn { bytes } => {
            put_u64(out, 1);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
            pad8(out);
        }
        FrozenTagger::Ensemble { crf, rnn } => {
            put_u64(out, 2);
            encode_tagger_v2_into(out, crf);
            encode_tagger_v2_into(out, rnn);
        }
    }
}

fn encode_veto_v2(m: &FrozenModel) -> Vec<u8> {
    // Composite keys sort bytewise, which is NOT the (attr, value) pair
    // order when one attr is a strict prefix of another (0xFF compares
    // above every UTF-8 byte), so sort the keys themselves.
    let mut keys: Vec<Vec<u8>> = m
        .veto_blocklist
        .iter()
        .map(|(attr, value)| blocklist_key(attr, value))
        .collect();
    keys.sort_unstable();
    let pairs: Vec<(&[u8], u32)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_slice(), i as u32))
        .collect();
    pae_fst::build_fst(&pairs, 0).expect("deduplicated blocklist keys build")
}

/// A v2 tagger section parsed into parts that can become either a
/// serving backend (zero-copy feature automaton) or a materialized
/// [`FrozenTagger`] (for API parity with v1).
enum TaggerParts {
    Crf {
        n_labels: usize,
        window: usize,
        max_sentence_bucket: usize,
        params: Vec<f64>,
        names: Fst,
    },
    Rnn {
        bytes: Vec<u8>,
    },
    Ensemble {
        crf: Box<TaggerParts>,
        rnn: Box<TaggerParts>,
    },
}

fn decode_tagger_parts(r: &mut ArcReader, depth: usize) -> Result<TaggerParts, BundleError> {
    match r.u64("tagger kind")? {
        0 => {
            let n_labels = r.u64("crf n_labels")? as usize;
            let window = r.u64("crf window")? as usize;
            let max_sentence_bucket = r.u64("crf sentence bucket")? as usize;
            let params = r.f64s("crf params")?;
            let names = r.carve_fst("crf feature automaton")?;
            r.skip_padding("crf record padding")?;
            let expected = pae_crf::CrfModel::param_len(names.n_keys(), n_labels);
            if params.len() != expected {
                return Err(BundleError::Malformed(format!(
                    "CRF parameter vector has {} entries, expected {expected}",
                    params.len()
                )));
            }
            Ok(TaggerParts::Crf {
                n_labels,
                window,
                max_sentence_bucket,
                params,
                names,
            })
        }
        1 => {
            let n = r.u64("rnn byte length")? as usize;
            let bytes = r.take(n, "rnn bytes")?.to_vec();
            // Validate eagerly: a bundle must never defer a decode
            // failure to serve time.
            pae_neural::BiLstmTagger::from_bytes(&bytes)
                .map_err(|e| BundleError::Malformed(format!("rnn tagger: {e}")))?;
            r.skip_padding("rnn record padding")?;
            Ok(TaggerParts::Rnn { bytes })
        }
        2 if depth == 0 => Ok(TaggerParts::Ensemble {
            crf: Box::new(decode_tagger_parts(r, 1)?),
            rnn: Box::new(decode_tagger_parts(r, 1)?),
        }),
        2 => Err(BundleError::Malformed("nested ensemble tagger".to_owned())),
        other => Err(BundleError::Malformed(format!(
            "unknown tagger kind {other}"
        ))),
    }
}

impl TaggerParts {
    fn into_trained(self) -> Result<TrainedTagger, String> {
        match self {
            TaggerParts::Crf {
                n_labels,
                window,
                max_sentence_bucket,
                params,
                names,
            } => crf_tagger_from_parts(
                n_labels,
                params,
                pae_crf::FeatureIndex::from_fst(names),
                window,
                max_sentence_bucket,
            ),
            TaggerParts::Rnn { bytes } => Ok(TrainedTagger::Rnn {
                model: pae_neural::BiLstmTagger::from_bytes(&bytes)?,
            }),
            TaggerParts::Ensemble { .. } => Err("nested ensemble".to_owned()),
        }
    }

    fn into_backend(self) -> Result<ExtractBackend, String> {
        match self {
            TaggerParts::Ensemble { crf, rnn } => Ok(ExtractBackend::Ensemble(
                Box::new(crf.into_trained()?),
                Box::new(rnn.into_trained()?),
            )),
            one => Ok(ExtractBackend::One(Box::new(one.into_trained()?))),
        }
    }

    /// Materializes the legacy in-memory form (rebuilds the id-ordered
    /// feature name table from the automaton).
    fn to_frozen(&self) -> Result<FrozenTagger, BundleError> {
        match self {
            TaggerParts::Crf {
                n_labels,
                window,
                max_sentence_bucket,
                params,
                names,
            } => {
                let n = names.n_keys();
                let mut feature_names = vec![String::new(); n];
                let mut seen = vec![false; n];
                for (key, id) in names.iter() {
                    let name = String::from_utf8(key)
                        .map_err(|_| BundleError::Malformed("non-UTF-8 feature name".to_owned()))?;
                    let id = id as usize;
                    if id >= n || seen[id] {
                        return Err(BundleError::Malformed(format!(
                            "feature automaton id {id} out of range or duplicated"
                        )));
                    }
                    feature_names[id] = name;
                    seen[id] = true;
                }
                Ok(FrozenTagger::Crf {
                    n_labels: *n_labels,
                    params: params.clone(),
                    feature_names,
                    window: *window,
                    max_sentence_bucket: *max_sentence_bucket,
                })
            }
            TaggerParts::Rnn { bytes } => Ok(FrozenTagger::Rnn {
                bytes: bytes.clone(),
            }),
            TaggerParts::Ensemble { crf, rnn } => Ok(FrozenTagger::Ensemble {
                crf: Box::new(crf.to_frozen()?),
                rnn: Box::new(rnn.to_frozen()?),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Whole-bundle encode.

/// The six sections shared by every tabled schema, in section-id
/// order.
fn common_sections(model: &FrozenModel) -> [(u32, Vec<u8>); 6] {
    let mut tagger = Vec::new();
    encode_tagger_v2_into(&mut tagger, &model.tagger);
    [
        (SEC_META, encode_meta(model)),
        (SEC_ATTRS, encode_attrs(model)),
        (SEC_LEXICON, encode_lexicon_v2(model)),
        (SEC_TAGGER, tagger),
        (SEC_VETO, encode_veto_v2(model)),
        (SEC_SEMANTIC, encode_semantic(model)),
    ]
}

/// Assembles a tabled (v2+) bundle from already-encoded sections.
fn encode_tabled(schema: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let payload_start = payload_start(sections.len());
    let mut payload = Vec::new();
    let mut table_bytes = Vec::with_capacity(sections.len() * V2_ENTRY_BYTES);
    for (id, bytes) in sections {
        pad8(&mut payload);
        put_u32(&mut table_bytes, *id);
        put_u32(&mut table_bytes, 0); // reserved
        put_u64(&mut table_bytes, payload.len() as u64);
        put_u64(&mut table_bytes, bytes.len() as u64);
        put_u64(&mut table_bytes, fnv1a_words(bytes));
        payload.extend_from_slice(bytes);
    }
    let mut out = Vec::with_capacity(payload_start + payload.len());
    out.extend_from_slice(&BUNDLE_MAGIC);
    put_u32(&mut out, schema);
    put_u64(&mut out, fnv1a(&table_bytes));
    put_u32(&mut out, sections.len() as u32);
    out.extend_from_slice(&table_bytes);
    out.resize(payload_start, 0);
    out.extend_from_slice(&payload);
    out
}

/// Serializes a frozen model into schema-v3 bundle bytes.
/// Deterministic: equal models produce byte-identical bundles.
pub fn encode(model: &FrozenModel) -> Vec<u8> {
    let common = common_sections(model);
    let mut sections: Vec<(u32, Vec<u8>)> = common.into_iter().collect();
    sections.push((SEC_REFERENCE, encode_reference(model)));
    encode_tabled(BUNDLE_SCHEMA_VERSION, &sections)
}

/// Serializes a frozen model into schema-v2 bundle bytes (no
/// reference-stats section — [`ReferenceStats`] is dropped). Kept as a
/// writer so compatibility fixtures and migration tests can produce
/// previous-format bundles from current models.
pub fn encode_v2(model: &FrozenModel) -> Vec<u8> {
    encode_tabled(BUNDLE_SCHEMA_V2, &common_sections(model))
}

/// Serializes a frozen model into legacy schema-v1 bundle bytes. Kept
/// as a writer so compatibility fixtures and migration tests can
/// produce old-format bundles from current models.
pub fn encode_v1(model: &FrozenModel) -> Vec<u8> {
    let mut tagger = Vec::new();
    encode_tagger_v1_into(&mut tagger, &model.tagger);
    let sections: [(u32, Vec<u8>); 6] = [
        (SEC_META, encode_meta(model)),
        (SEC_ATTRS, encode_attrs(model)),
        (SEC_LEXICON, encode_lexicon_v1(model)),
        (SEC_TAGGER, tagger),
        (SEC_VETO, encode_veto_v1(model)),
        (SEC_SEMANTIC, encode_semantic(model)),
    ];
    let mut payload = Vec::new();
    let mut table = Vec::new();
    for (id, bytes) in &sections {
        table.push((*id, payload.len() as u64, bytes.len() as u64));
        payload.extend_from_slice(bytes);
    }
    let mut out = Vec::with_capacity(HEADER_BYTES + table.len() * 20 + payload.len());
    out.extend_from_slice(&BUNDLE_MAGIC);
    put_u32(&mut out, BUNDLE_SCHEMA_V1);
    put_u64(&mut out, fnv1a(&payload));
    put_u32(&mut out, table.len() as u32);
    for (id, offset, len) in table {
        put_u32(&mut out, id);
        put_u64(&mut out, offset);
        put_u64(&mut out, len);
    }
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------
// v1 whole-bundle decode (legacy eager path).

fn decode_v1(bytes: &[u8]) -> Result<FrozenModel, BundleError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic").map_err(|_| BundleError::BadMagic)? != BUNDLE_MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = r.u32("schema version")?;
    if version != BUNDLE_SCHEMA_V1 {
        return Err(BundleError::UnsupportedVersion { found: version });
    }
    let declared_hash = r.u64("content hash")?;
    let n_sections = r.u32("section count")? as usize;
    if n_sections != V2_SECTION_IDS.len() {
        return Err(BundleError::Malformed(format!(
            "expected {} sections, header declares {n_sections}",
            V2_SECTION_IDS.len()
        )));
    }
    let mut table = Vec::with_capacity(n_sections);
    for (i, &want) in V2_SECTION_IDS.iter().enumerate() {
        let id = r.u32("section id")?;
        let offset = r.u64("section offset")?;
        let len = r.u64("section length")?;
        if id != want {
            return Err(BundleError::Malformed(format!(
                "section {i} has id {id}, expected {want}"
            )));
        }
        table.push((offset, len));
    }
    let payload = &bytes[r.pos..];
    let actual_hash = fnv1a(payload);
    if actual_hash != declared_hash {
        return Err(BundleError::HashMismatch {
            expected: declared_hash,
            actual: actual_hash,
        });
    }
    // Sections must tile the payload exactly, in order.
    let mut cursor = 0u64;
    for (i, &(offset, len)) in table.iter().enumerate() {
        if offset != cursor {
            return Err(BundleError::Malformed(format!(
                "section {i} starts at {offset}, expected {cursor}"
            )));
        }
        cursor = offset
            .checked_add(len)
            .ok_or_else(|| BundleError::Malformed("section extent overflows".to_owned()))?;
    }
    if cursor != payload.len() as u64 {
        return Err(BundleError::Malformed(format!(
            "sections cover {cursor} bytes, payload has {}",
            payload.len()
        )));
    }
    let section = |i: usize| {
        let (offset, len) = table[i];
        &payload[offset as usize..(offset + len) as usize]
    };

    let (language, use_veto, max_value_chars, config) = decode_meta(section(0))?;
    let attrs = decode_attrs(section(1))?;

    // Lexicon.
    let mut r = Reader::new(section(2));
    let n_words = r.len(9, "lexicon entry count")?;
    let mut entries = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        let word = r.string("lexicon word")?;
        let tag = r.u8("lexicon tag")? as usize;
        if tag >= PosTag::ALL.len() {
            return Err(BundleError::Malformed(format!(
                "invalid PoS tag index {tag}"
            )));
        }
        entries.push((word, PosTag::from_index(tag)));
    }
    r.finish("lexicon section")?;
    let lexicon = Lexicon::from_entries(entries);

    // Tagger.
    let mut r = Reader::new(section(3));
    let tagger = decode_tagger_v1(&mut r, 0)?;
    r.finish("tagger section")?;

    // Veto blocklist.
    let mut r = Reader::new(section(4));
    let n_blocked = r.len(16, "blocklist entry count")?;
    let mut veto_blocklist = Vec::with_capacity(n_blocked);
    for _ in 0..n_blocked {
        let attr = r.string("blocklist attr")?;
        let value = r.string("blocklist value")?;
        veto_blocklist.push((attr, value));
    }
    r.finish("veto section")?;

    let semantic = decode_semantic_section(section(5))?;

    Ok(FrozenModel {
        language,
        lexicon,
        attrs,
        tagger,
        use_veto,
        max_value_chars,
        veto_blocklist,
        semantic,
        reference: None,
        config,
    })
}

// ---------------------------------------------------------------------
// Zero-copy loading.

/// A validated bundle held as shared bytes.
///
/// Opening performs only header/table parsing and hash verification —
/// no section decoding. [`extractor`](Self::extractor) then assembles a
/// serving [`FrozenExtractor`] whose lexicon, CRF feature index, and
/// veto blocklist are automata *borrowing* these bytes (v2), so the
/// dominant load costs are one word-folded hash pass over the payload
/// ([`fnv1a_words`]) and one bulk copy of the CRF parameter vector.
/// v1 bundles are transparently decoded through the legacy eager path
/// at open time.
pub struct LoadedBundle {
    bytes: Arc<[u8]>,
    schema: u32,
    content_hash: u64,
    /// Absolute `(start, len)` per section, in [`SECTION_IDS`] order
    /// (the trailing reference entry stays `(0, 0)` for v2; unused for
    /// v1).
    sections: [(usize, usize); 7],
    /// The eagerly decoded model for legacy v1 bundles.
    legacy: Option<FrozenModel>,
}

impl LoadedBundle {
    /// Reads and validates a bundle file.
    pub fn open(path: &Path) -> Result<LoadedBundle, BundleError> {
        let bytes =
            std::fs::read(path).map_err(|e| BundleError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(bytes)
    }

    /// Validates an owned byte buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<LoadedBundle, BundleError> {
        Self::from_shared(Arc::from(bytes.into_boxed_slice()))
    }

    /// Validates shared bytes (the buffer is kept alive by the carved
    /// automata for as long as any extractor uses them).
    pub fn from_shared(bytes: Arc<[u8]>) -> Result<LoadedBundle, BundleError> {
        let mut r = Reader::new(&bytes);
        if r.take(4, "magic").map_err(|_| BundleError::BadMagic)? != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic);
        }
        let version = r.u32("schema version")?;
        match version {
            BUNDLE_SCHEMA_V1 => {
                let content_hash = r.u64("content hash")?;
                let legacy = decode_v1(&bytes)?;
                Ok(LoadedBundle {
                    bytes,
                    schema: BUNDLE_SCHEMA_V1,
                    content_hash,
                    sections: [(0, 0); 7],
                    legacy: Some(legacy),
                })
            }
            BUNDLE_SCHEMA_V2 | BUNDLE_SCHEMA_VERSION => {
                let ids: &[u32] = if version == BUNDLE_SCHEMA_V2 {
                    &V2_SECTION_IDS
                } else {
                    &SECTION_IDS
                };
                let declared = r.u64("content hash")?;
                let n_sections = r.u32("section count")? as usize;
                if n_sections != ids.len() {
                    return Err(BundleError::Malformed(format!(
                        "expected {} sections, header declares {n_sections}",
                        ids.len()
                    )));
                }
                let table_bytes = r.take(ids.len() * V2_ENTRY_BYTES, "section table")?;
                let actual = fnv1a(table_bytes);
                if actual != declared {
                    return Err(BundleError::HashMismatch {
                        expected: declared,
                        actual,
                    });
                }
                let payload_start = payload_start(ids.len());
                if bytes.len() < payload_start {
                    return Err(BundleError::Truncated(format!(
                        "payload starts at {payload_start}, file has {} bytes",
                        bytes.len()
                    )));
                }
                let mut t = Reader::new(table_bytes);
                let mut sections = [(0usize, 0usize); 7];
                let mut cursor = 0u64;
                for (i, &want) in ids.iter().enumerate() {
                    let id = t.u32("section id")?;
                    let reserved = t.u32("section reserved")?;
                    let offset = t.u64("section offset")?;
                    let len = t.u64("section length")?;
                    let hash = t.u64("section hash")?;
                    if id != want {
                        return Err(BundleError::Malformed(format!(
                            "section {i} has id {id}, expected {want}"
                        )));
                    }
                    if reserved != 0 {
                        return Err(BundleError::Malformed(format!(
                            "section {i} has nonzero reserved field {reserved}"
                        )));
                    }
                    let aligned = cursor.checked_add(7).ok_or_else(|| {
                        BundleError::Malformed("section extent overflows".to_owned())
                    })? & !7;
                    if offset != aligned {
                        return Err(BundleError::Malformed(format!(
                            "section {i} starts at {offset}, expected {aligned}"
                        )));
                    }
                    let end = offset.checked_add(len).ok_or_else(|| {
                        BundleError::Malformed("section extent overflows".to_owned())
                    })?;
                    let abs_start = payload_start as u64 + offset;
                    let abs_end = payload_start as u64 + end;
                    if abs_end > bytes.len() as u64 {
                        return Err(BundleError::Truncated(format!(
                            "section {i} extends to {abs_end}, file has {} bytes",
                            bytes.len()
                        )));
                    }
                    // Inter-section padding is zeros by construction.
                    let pad = &bytes[(payload_start as u64 + cursor) as usize..abs_start as usize];
                    if pad.iter().any(|&b| b != 0) {
                        return Err(BundleError::Malformed(format!(
                            "nonzero padding before section {i}"
                        )));
                    }
                    let slice = &bytes[abs_start as usize..abs_end as usize];
                    let actual = fnv1a_words(slice);
                    if actual != hash {
                        return Err(BundleError::HashMismatch {
                            expected: hash,
                            actual,
                        });
                    }
                    sections[i] = (abs_start as usize, len as usize);
                    cursor = end;
                }
                if payload_start as u64 + cursor != bytes.len() as u64 {
                    return Err(BundleError::Malformed(format!(
                        "sections end at {}, file has {} bytes",
                        payload_start as u64 + cursor,
                        bytes.len()
                    )));
                }
                Ok(LoadedBundle {
                    bytes,
                    schema: version,
                    content_hash: declared,
                    sections,
                    legacy: None,
                })
            }
            found => Err(BundleError::UnsupportedVersion { found }),
        }
    }

    /// The bundle's schema version (1, 2, or 3).
    pub fn schema_version(&self) -> u32 {
        self.schema
    }

    /// The verified content hash the header declares.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    fn section(&self, i: usize) -> &[u8] {
        let (start, len) = self.sections[i];
        &self.bytes[start..start + len]
    }

    /// Carves a whole section as a zero-copy automaton; strict about
    /// trailing bytes.
    fn section_fst(&self, i: usize, what: &str) -> Result<Fst, BundleError> {
        let (start, len) = self.sections[i];
        let fst = Fst::from_shared(Arc::clone(&self.bytes), start, len)
            .map_err(|e| BundleError::Malformed(format!("{what}: {e}")))?;
        if fst.view().arena_len() != len {
            return Err(BundleError::Malformed(format!(
                "{what}: {} trailing bytes after arena",
                len - fst.view().arena_len()
            )));
        }
        Ok(fst)
    }

    fn tagger_parts(&self) -> Result<TaggerParts, BundleError> {
        let (start, len) = self.sections[3];
        let mut r = ArcReader::new(&self.bytes, start, len);
        let parts = decode_tagger_parts(&mut r, 0)?;
        r.finish("tagger section")?;
        Ok(parts)
    }

    /// Assembles a serving extractor. For v2 this is the zero-copy
    /// path: the lexicon, CRF feature index, and veto blocklist all
    /// borrow this bundle's bytes.
    pub fn extractor(&self) -> Result<FrozenExtractor, BundleError> {
        if let Some(model) = &self.legacy {
            return model.extractor().map_err(BundleError::Malformed);
        }
        let (language, use_veto, max_value_chars, _config) = decode_meta(self.section(0))?;
        let attrs = decode_attrs(self.section(1))?;
        let lexicon = Lexicon::from_fst(self.section_fst(2, "lexicon automaton")?);
        let backend = self
            .tagger_parts()?
            .into_backend()
            .map_err(BundleError::Malformed)?;
        let veto = Blocklist::Fst(self.section_fst(4, "veto automaton")?);
        let semantic = decode_semantic_section(self.section(5))?;
        Ok(assemble_extractor(
            language,
            lexicon,
            attrs,
            backend,
            use_veto,
            max_value_chars,
            veto,
            semantic,
        ))
    }

    /// Materializes the full [`FrozenModel`] (v1 API parity; walks and
    /// validates every section).
    pub fn model(&self) -> Result<FrozenModel, BundleError> {
        if let Some(model) = &self.legacy {
            return Ok(model.clone());
        }
        let (language, use_veto, max_value_chars, config) = decode_meta(self.section(0))?;
        let attrs = decode_attrs(self.section(1))?;
        let lexicon = Lexicon::from_fst(self.section_fst(2, "lexicon automaton")?);
        let tagger = self.tagger_parts()?.to_frozen()?;
        let veto_fst = self.section_fst(4, "veto automaton")?;
        let mut veto_blocklist = Vec::with_capacity(veto_fst.n_keys());
        for (key, _) in veto_fst.iter() {
            let sep = key.iter().position(|&b| b == 0xFF).ok_or_else(|| {
                BundleError::Malformed("veto key lacks the attr/value separator".to_owned())
            })?;
            let attr = String::from_utf8(key[..sep].to_vec())
                .map_err(|_| BundleError::Malformed("non-UTF-8 veto attr".to_owned()))?;
            let value = String::from_utf8(key[sep + 1..].to_vec())
                .map_err(|_| BundleError::Malformed("non-UTF-8 veto value".to_owned()))?;
            veto_blocklist.push((attr, value));
        }
        veto_blocklist.sort();
        let semantic = decode_semantic_section(self.section(5))?;
        let reference = self.reference()?;
        Ok(FrozenModel {
            language,
            lexicon,
            attrs,
            tagger,
            use_veto,
            max_value_chars,
            veto_blocklist,
            semantic,
            reference,
            config,
        })
    }

    /// The freeze-time [`ReferenceStats`], when the bundle carries
    /// them. `Ok(None)` for v1/v2 bundles (no reference section — the
    /// quality monitor serves in "no-reference" mode) and for v3
    /// bundles frozen without stats.
    pub fn reference(&self) -> Result<Option<ReferenceStats>, BundleError> {
        if let Some(model) = &self.legacy {
            return Ok(model.reference.clone());
        }
        if self.schema < BUNDLE_SCHEMA_VERSION {
            return Ok(None);
        }
        decode_reference_section(self.section(6))
    }
}

// ---------------------------------------------------------------------
// Whole-bundle convenience API.

/// Parses and validates bundle bytes (either schema) back into a
/// [`FrozenModel`].
pub fn decode(bytes: &[u8]) -> Result<FrozenModel, BundleError> {
    LoadedBundle::from_bytes(bytes.to_vec())?.model()
}

/// The content hash a bundle's header declares (validating magic and
/// version first). Cheap: does not decode or re-hash anything.
pub fn declared_hash(bytes: &[u8]) -> Result<u64, BundleError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic").map_err(|_| BundleError::BadMagic)? != BUNDLE_MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = r.u32("schema version")?;
    if !matches!(
        version,
        BUNDLE_SCHEMA_V1 | BUNDLE_SCHEMA_V2 | BUNDLE_SCHEMA_VERSION
    ) {
        return Err(BundleError::UnsupportedVersion { found: version });
    }
    r.u64("content hash")
}

/// Writes `model` to `path`, refusing to overwrite an existing file
/// unless `force` (the same create-new semantics as the CLI's trace
/// outputs). Returns the bundle's content hash.
pub fn write_bundle(model: &FrozenModel, path: &Path, force: bool) -> Result<u64, BundleError> {
    write_bundle_bytes(&encode(model), path, force)
}

/// Writes already-encoded bundle bytes (either schema) with the same
/// overwrite semantics as [`write_bundle`].
pub fn write_bundle_bytes(bytes: &[u8], path: &Path, force: bool) -> Result<u64, BundleError> {
    use std::io::Write as _;
    let hash = declared_hash(bytes)?;
    if force {
        std::fs::write(path, bytes).map_err(|e| BundleError::Io(e.to_string()))?;
    } else {
        let mut f = pae_obs::reserve_output(path).map_err(BundleError::Io)?;
        f.write_all(bytes)
            .and_then(|()| f.flush())
            .map_err(|e| BundleError::Io(e.to_string()))?;
    }
    Ok(hash)
}

/// Reads and validates a bundle from `path`.
pub fn read_bundle(path: &Path) -> Result<FrozenModel, BundleError> {
    read_bundle_with_hash(path).map(|(model, _)| model)
}

/// Reads and validates a bundle from `path`, also returning its
/// declared (and verified) content hash so servers can report which
/// exact bundle they loaded without re-reading the file.
pub fn read_bundle_with_hash(path: &Path) -> Result<(FrozenModel, u64), BundleError> {
    let loaded = LoadedBundle::open(path)?;
    let model = loaded.model()?;
    Ok((model, loaded.content_hash()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapPipeline;
    use crate::config::{PipelineConfig, TaggerKind};
    use crate::corpus::parse_corpus;
    use pae_synth::{CategoryKind, Dataset, DatasetSpec};

    fn frozen_fixture(kind: TaggerKind) -> (Dataset, FrozenModel) {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(50)
            .generate();
        let corpus = parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: kind,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
        (dataset, model)
    }

    fn frozen_model(kind: TaggerKind) -> FrozenModel {
        frozen_fixture(kind).1
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let model = frozen_model(TaggerKind::Crf);
        let bytes = encode(&model);
        let restored = decode(&bytes).expect("decode");
        assert_eq!(model, restored);
        // Re-encoding the decoded model reproduces the bytes exactly,
        // and encoding is deterministic call to call.
        assert_eq!(encode(&restored), bytes);
        assert_eq!(encode(&model), bytes);
        // The tabled content hash covers the section table.
        assert_eq!(
            declared_hash(&bytes).unwrap(),
            fnv1a(&bytes[HEADER_BYTES..HEADER_BYTES + 7 * V2_ENTRY_BYTES])
        );
        // Freeze always embeds reference stats, and they survive the
        // round trip through the v3 section.
        assert!(restored.reference.is_some());
        let loaded = LoadedBundle::from_bytes(bytes).expect("load v3");
        assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_VERSION);
        assert_eq!(loaded.reference().expect("reference"), model.reference);
    }

    #[test]
    fn v2_writer_drops_reference_and_loads_in_no_reference_mode() {
        let model = frozen_model(TaggerKind::Crf);
        assert!(model.reference.is_some(), "freeze computes reference stats");
        let bytes = encode_v2(&model);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        let loaded = LoadedBundle::from_bytes(bytes.clone()).expect("load v2");
        assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_V2);
        // No reference section: None, not an empty/zeroed stats block.
        assert_eq!(loaded.reference().expect("reference"), None);
        let restored = loaded.model().expect("model");
        assert_eq!(restored.reference, None);
        let mut stripped = model.clone();
        stripped.reference = None;
        assert_eq!(restored, stripped);
        // Re-encoding as v2 is byte-deterministic, and re-encoding the
        // no-reference model as v3 stores an absent-flag section that
        // still round-trips.
        assert_eq!(encode_v2(&restored), bytes);
        let v3 = encode(&restored);
        let reloaded = LoadedBundle::from_bytes(v3).expect("load v3");
        assert_eq!(reloaded.reference().expect("reference"), None);
        assert_eq!(reloaded.model().expect("model"), stripped);
    }

    #[test]
    fn corrupt_reference_section_is_a_typed_error() {
        let model = frozen_model(TaggerKind::Crf);
        let bytes = encode(&model);
        // The reference section is the last one; its presence flag is
        // the first byte after the preceding sections' payload. Flip a
        // byte inside it: the section hash must catch it.
        let mut bad = bytes.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x55;
        let err = match LoadedBundle::from_bytes(bad) {
            Ok(_) => panic!("corrupt reference section was accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, BundleError::HashMismatch { .. }));
    }

    /// The word-folded section hash: sensitive to any single-byte
    /// change at any offset (aligned or tail), deterministic, and
    /// trailing-zero collisions are tolerable because the section
    /// length is committed separately in the table.
    #[test]
    fn fnv1a_words_detects_flips_at_every_offset() {
        let base: Vec<u8> = (0..37u8).collect(); // deliberately not a multiple of 8
        let reference = fnv1a_words(&base);
        assert_eq!(fnv1a_words(&base), reference);
        for i in 0..base.len() {
            let mut corrupt = base.clone();
            corrupt[i] ^= 0x01;
            assert_ne!(
                fnv1a_words(&corrupt),
                reference,
                "flip at offset {i} went undetected"
            );
        }
        // The documented tail property: trailing zeros pad into the
        // same final word — (len, hash) is the committed identity.
        assert_eq!(fnv1a_words(b"x"), fnv1a_words(b"x\0"));
        // Distinct from the byte-wise variant once a word holds more
        // than one byte (a 1-byte input degenerates to the same single
        // xor-multiply in both).
        assert_ne!(fnv1a_words(b"xy"), fnv1a(b"xy"));
    }

    #[test]
    fn legacy_v1_round_trips() {
        let model = frozen_model(TaggerKind::Crf);
        // v1 has no reference section, so the round trip compares
        // against the model with its reference stats stripped.
        let mut stripped = model.clone();
        stripped.reference = None;
        let bytes = encode_v1(&model);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
        let restored = decode(&bytes).expect("decode v1");
        assert_eq!(stripped, restored);
        // v1 hash covers the payload after the 20-byte table entries.
        assert_eq!(declared_hash(&bytes).unwrap(), fnv1a(&bytes[20 + 6 * 20..]));
        let loaded = LoadedBundle::from_bytes(bytes).expect("load v1");
        assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_V1);
        assert_eq!(loaded.reference().expect("reference"), None);
        assert_eq!(loaded.model().expect("model"), stripped);
    }

    #[test]
    fn ensemble_round_trips() {
        let model = frozen_model(TaggerKind::Ensemble);
        let bytes = encode(&model);
        let restored = decode(&bytes).expect("decode");
        assert_eq!(model, restored);
        assert!(matches!(restored.tagger, FrozenTagger::Ensemble { .. }));
    }

    #[test]
    fn zero_copy_extractor_matches_rehydrated_model() {
        let (dataset, model) = frozen_fixture(TaggerKind::Crf);
        let loaded = LoadedBundle::from_bytes(encode(&model)).expect("load");
        assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_VERSION);
        let zero_copy = loaded.extractor().expect("zero-copy extractor");
        let eager = model.extractor().expect("rehydrate");
        for page in dataset.pages.iter().take(15) {
            assert_eq!(
                zero_copy.extract_page(page.id, &page.html),
                eager.extract_page(page.id, &page.html),
                "outputs diverge on page {}",
                page.id
            );
        }
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let model = frozen_model(TaggerKind::Crf);
        let bytes = encode(&model);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad), Err(BundleError::BadMagic));

        // Wrong schema version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            decode(&bad),
            Err(BundleError::UnsupportedVersion { found: 99 })
        ));

        // Payload corruption → the section's own hash catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            decode(&bad),
            Err(BundleError::HashMismatch { .. })
        ));

        // Table corruption → the header's content hash catches it.
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 8] ^= 0xff;
        assert!(matches!(
            decode(&bad),
            Err(BundleError::HashMismatch { .. })
        ));

        // Truncation anywhere must be an error (never a panic). Step by
        // a prime so the loop samples many offsets without being slow.
        let mut cut = 0;
        while cut < bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "decode succeeded at {cut}");
            cut += 131;
        }
        assert!(decode(&[]).is_err());

        // Trailing garbage after the last section → the sections no
        // longer end exactly at the file's end.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn file_round_trip_respects_overwrite_guard() {
        let model = frozen_model(TaggerKind::Crf);
        let dir = std::env::temp_dir().join(format!("pae-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.paeb");
        let _ = std::fs::remove_file(&path);

        let hash = write_bundle(&model, &path, false).expect("first write");
        let restored = read_bundle(&path).expect("read");
        assert_eq!(model, restored);
        assert_eq!(declared_hash(&std::fs::read(&path).unwrap()).unwrap(), hash);

        // Second non-forced write must refuse.
        let err = write_bundle(&model, &path, false).unwrap_err();
        assert!(matches!(&err, BundleError::Io(msg) if msg.contains("refusing to overwrite")));
        // Forced write succeeds and is byte-identical.
        let hash2 = write_bundle(&model, &path, true).expect("forced write");
        assert_eq!(hash, hash2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
