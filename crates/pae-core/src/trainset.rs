//! Training-set generation: projecting known triples onto the corpus
//! as BIO labels (§V-A, line 5 of the algorithm).

use std::collections::HashMap;

use pae_text::PosTag;

use crate::corpus::Corpus;
use crate::types::Triple;

/// The BIO label space over the attribute clusters.
///
/// Label 0 is `O`; attribute `i` owns labels `2i+1` (`B`) and `2i+2`
/// (`I`). Attribute order is sorted cluster name, so the space is
/// deterministic.
#[derive(Debug, Clone)]
pub struct LabelSpace {
    attrs: Vec<String>,
    index: HashMap<String, usize>,
}

impl LabelSpace {
    /// Builds the space from cluster names (deduplicated + sorted).
    pub fn new(mut attrs: Vec<String>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        let index = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        LabelSpace { attrs, index }
    }

    /// Number of labels (`1 + 2 · |attrs|`).
    pub fn n_labels(&self) -> usize {
        1 + 2 * self.attrs.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute names, sorted.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Index of an attribute name.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.index.get(attr).copied()
    }

    /// `B` label of attribute `i`.
    pub fn begin(&self, attr: usize) -> usize {
        1 + 2 * attr
    }

    /// `I` label of attribute `i`.
    pub fn inside(&self, attr: usize) -> usize {
        2 + 2 * attr
    }

    /// Decomposes a label into `(attr index, is_begin)`; `None` for `O`.
    pub fn attr_of(&self, label: usize) -> Option<(usize, bool)> {
        if label == 0 || label >= self.n_labels() {
            return None;
        }
        Some(((label - 1) / 2, (label - 1).is_multiple_of(2)))
    }

    /// Restricts the space to a subset of attributes (specialized
    /// models, §VIII-D). Unknown names are ignored.
    pub fn restrict(&self, subset: &[&str]) -> LabelSpace {
        LabelSpace::new(
            self.attrs
                .iter()
                .filter(|a| subset.contains(&a.as_str()))
                .cloned()
                .collect(),
        )
    }
}

/// One BIO-labelled sentence.
#[derive(Debug, Clone)]
pub struct LabeledSentence {
    /// Product the sentence came from.
    pub product: u32,
    /// Sentence index within the product (0 = title).
    pub sent_idx: usize,
    /// Surface words.
    pub words: Vec<String>,
    /// PoS tags, parallel to `words`.
    pub pos: Vec<PosTag>,
    /// BIO labels, parallel to `words`.
    pub labels: Vec<usize>,
}

impl LabeledSentence {
    /// True when at least one non-`O` label is present.
    pub fn has_annotations(&self) -> bool {
        self.labels.iter().any(|&l| l != 0)
    }
}

/// Generates the labelled corpus slice for the given known triples.
///
/// Only products that own at least one triple contribute sentences
/// (the paper tags *"an initial set of products (the few ones with
/// dictionary tables)"*); all their sentences are included so the
/// model sees negatives. Within a sentence, every occurrence of one of
/// the product's known values is tagged with its attribute; longer
/// values win on overlap.
pub fn generate_training_set(
    corpus: &Corpus,
    triples: &[Triple],
    labels: &LabelSpace,
    extra_values: &[(String, String)],
) -> Vec<LabeledSentence> {
    // Per-product value inventory.
    let mut per_product: HashMap<u32, Vec<(usize, Vec<String>)>> = HashMap::new();
    for t in triples {
        if let Some(ai) = labels.attr_index(&t.attr) {
            per_product
                .entry(t.product)
                .or_default()
                .push((ai, t.value.split(' ').map(str::to_owned).collect()));
        }
    }
    // Category-level extra values (diversified seed entries without a
    // product) are taggable in any training product's page.
    let extra: Vec<(usize, Vec<String>)> = extra_values
        .iter()
        .filter_map(|(attr, value)| {
            labels
                .attr_index(attr)
                .map(|ai| (ai, value.split(' ').map(str::to_owned).collect()))
        })
        .collect();

    let mut out = Vec::new();
    for product in &corpus.products {
        let Some(own) = per_product.get_mut(&product.id) else {
            continue;
        };
        // Longer values first so overlaps resolve to the longest match.
        let mut inventory: Vec<(usize, Vec<String>)> = own.clone();
        inventory.extend(extra.iter().cloned());
        inventory.sort_by_key(|(_, value)| std::cmp::Reverse(value.len()));
        inventory.dedup();

        for (sent_idx, sentence) in product.sentences.iter().enumerate() {
            let words: Vec<String> = sentence.words().map(str::to_owned).collect();
            let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
            let mut lab = vec![0usize; words.len()];

            for (ai, value) in &inventory {
                mark_occurrences(&words, value, *ai, labels, &mut lab);
            }
            out.push(LabeledSentence {
                product: product.id,
                sent_idx,
                words,
                pos,
                labels: lab,
            });
        }
    }
    out
}

/// Tags non-overlapping occurrences of `value` in `words`.
fn mark_occurrences(
    words: &[String],
    value: &[String],
    attr: usize,
    labels: &LabelSpace,
    out: &mut [usize],
) {
    if value.is_empty() || value.len() > words.len() {
        return;
    }
    let mut i = 0;
    while i + value.len() <= words.len() {
        let window = &words[i..i + value.len()];
        let free = out[i..i + value.len()].iter().all(|&l| l == 0);
        if free && window.iter().zip(value).all(|(a, b)| a == b) {
            out[i] = labels.begin(attr);
            for slot in out[i + 1..i + value.len()].iter_mut() {
                *slot = labels.inside(attr);
            }
            i += value.len();
        } else {
            i += 1;
        }
    }
}

/// Decodes BIO labels back into `(attr index, token range)` spans.
pub fn decode_spans(
    labels_seq: &[usize],
    space: &LabelSpace,
) -> Vec<(usize, std::ops::Range<usize>)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < labels_seq.len() {
        match space.attr_of(labels_seq[i]) {
            Some((attr, true)) => {
                let start = i;
                i += 1;
                while i < labels_seq.len() && space.attr_of(labels_seq[i]) == Some((attr, false)) {
                    i += 1;
                }
                spans.push((attr, start..i));
            }
            // A stray `I` without its `B` starts a span too (robust
            // decoding, as CRFsuite does).
            Some((attr, false)) => {
                let start = i;
                i += 1;
                while i < labels_seq.len() && space.attr_of(labels_seq[i]) == Some((attr, false)) {
                    i += 1;
                }
                spans.push((attr, start..i));
            }
            None => i += 1,
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_space_layout() {
        let s = LabelSpace::new(vec!["b".into(), "a".into(), "b".into()]);
        assert_eq!(s.n_attrs(), 2);
        assert_eq!(s.n_labels(), 5);
        assert_eq!(s.attrs(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(s.begin(0), 1);
        assert_eq!(s.inside(0), 2);
        assert_eq!(s.begin(1), 3);
        assert_eq!(s.attr_of(0), None);
        assert_eq!(s.attr_of(3), Some((1, true)));
        assert_eq!(s.attr_of(4), Some((1, false)));
        assert_eq!(s.attr_of(9), None);
    }

    #[test]
    fn restrict_keeps_subset() {
        let s = LabelSpace::new(vec!["a".into(), "b".into(), "c".into()]);
        let r = s.restrict(&["c", "a", "zzz"]);
        assert_eq!(r.attrs(), &["a".to_owned(), "c".to_owned()]);
        assert_eq!(r.n_labels(), 5);
    }

    #[test]
    fn mark_tags_multiword_and_respects_overlap() {
        let space = LabelSpace::new(vec!["color".into(), "material".into()]);
        let words: Vec<String> = ["the", "deep", "red", "cotton", "bag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = vec![0; 5];
        // Longer value tagged first wins.
        mark_occurrences(
            &words,
            &["deep".to_owned(), "red".to_owned()],
            0,
            &space,
            &mut out,
        );
        mark_occurrences(&words, &["red".to_owned()], 0, &space, &mut out);
        mark_occurrences(&words, &["cotton".to_owned()], 1, &space, &mut out);
        assert_eq!(
            out,
            vec![0, space.begin(0), space.inside(0), space.begin(1), 0]
        );
    }

    #[test]
    fn decode_roundtrip() {
        let space = LabelSpace::new(vec!["color".into(), "weight".into()]);
        let labels = vec![
            0,
            space.begin(0),
            space.inside(0),
            0,
            space.begin(1),
            space.begin(0),
        ];
        let spans = decode_spans(&labels, &space);
        assert_eq!(spans, vec![(0, 1..3), (1, 4..5), (0, 5..6)]);
    }

    #[test]
    fn decode_handles_stray_inside() {
        let space = LabelSpace::new(vec!["color".into()]);
        let labels = vec![space.inside(0), space.inside(0), 0];
        let spans = decode_spans(&labels, &space);
        assert_eq!(spans, vec![(0, 0..2)]);
    }
}
