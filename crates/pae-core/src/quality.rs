//! Freeze-time reference statistics for field quality monitoring.
//!
//! A bundle that passes hash validation can still be the *wrong* model
//! for the traffic it serves: shifted catalogs produce empty
//! extractions, unseen values, or collapsed confidences long before any
//! system metric moves. [`ReferenceStats`] captures what extraction
//! looked like over the training corpus at freeze time — per-attribute
//! extraction rates, top-k value heavy hitters, value-length
//! histograms, per-backend confidence histograms, and the token OOV
//! rate against the segmentation lexicon — so the serving layer can
//! score live traffic against it (PSI / Jensen–Shannon over the shared
//! fixed bucket layouts in this module).
//!
//! Everything here is deterministic and integer-valued: equal corpora
//! produce byte-identical stats, which keeps bundle encoding
//! byte-deterministic. Rates are derived on demand, never stored.

use std::collections::BTreeMap;

use crate::types::Triple;

/// Confidence histogram buckets: equal width over `[0, 1]`.
pub const CONF_BUCKETS: usize = 20;
/// Value-length histogram buckets.
pub const LEN_BUCKETS: usize = 16;
/// Characters per value-length bucket (the last bucket absorbs longer
/// values).
pub const LEN_BUCKET_CHARS: usize = 2;
/// Heavy hitters kept per attribute (exact top-k at freeze time).
pub const TOP_VALUES: usize = 8;

/// The bucket a model confidence in `[0, 1]` falls into.
pub fn confidence_bucket(confidence: f64) -> usize {
    let c = confidence.clamp(0.0, 1.0);
    ((c * CONF_BUCKETS as f64) as usize).min(CONF_BUCKETS - 1)
}

/// The bucket a value length (in chars) falls into.
pub fn value_len_bucket(chars: usize) -> usize {
    (chars / LEN_BUCKET_CHARS).min(LEN_BUCKETS - 1)
}

/// Freeze-time extraction behavior for one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrReference {
    /// Attribute name (bundle attrs order).
    pub attribute: String,
    /// Kept triples over the training corpus.
    pub triples: u64,
    /// Exact top-[`TOP_VALUES`] values by count, count-descending then
    /// value-ascending.
    pub top_values: Vec<(String, u64)>,
    /// Value-length histogram ([`LEN_BUCKETS`] buckets of
    /// [`LEN_BUCKET_CHARS`] chars).
    pub value_len: Vec<u64>,
}

impl AttrReference {
    /// Triples per page over a corpus of `pages` pages.
    pub fn rate(&self, pages: u64) -> f64 {
        if pages == 0 {
            0.0
        } else {
            self.triples as f64 / pages as f64
        }
    }
}

/// Freeze-time confidence distribution of one tagger backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendReference {
    /// Backend name (`"crf"` or `"rnn"`).
    pub backend: String,
    /// Span-confidence histogram ([`CONF_BUCKETS`] buckets over
    /// `[0, 1]`) of decoded candidates, pre-cleaning.
    pub confidence: Vec<u64>,
}

/// What extraction looked like over the training corpus at freeze
/// time. Embedded in schema-v3 bundles as an optional, hash-checked
/// section; the serving quality monitor scores live windows against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceStats {
    /// Pages observed.
    pub pages: u64,
    /// Pages that produced zero kept triples.
    pub empty_pages: u64,
    /// Kept triples across all attributes.
    pub total_triples: u64,
    /// Tokens across all analyzed sentences.
    pub tokens: u64,
    /// Tokens absent from the segmentation/PoS lexicon.
    pub oov_tokens: u64,
    /// Per-backend confidence histograms, backend order fixed by the
    /// frozen tagger (CRF arm first for ensembles).
    pub backends: Vec<BackendReference>,
    /// Per-attribute stats, in bundle attrs order.
    pub attrs: Vec<AttrReference>,
}

impl ReferenceStats {
    /// Fraction of pages with zero kept triples.
    pub fn empty_rate(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.empty_pages as f64 / self.pages as f64
        }
    }

    /// Fraction of tokens absent from the lexicon.
    pub fn oov_rate(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.oov_tokens as f64 / self.tokens as f64
        }
    }

    /// The reference entry for an attribute, if the model extracts it.
    pub fn attr(&self, attribute: &str) -> Option<&AttrReference> {
        self.attrs.iter().find(|a| a.attribute == attribute)
    }
}

/// Per-page side observations from the instrumented extraction path
/// ([`crate::frozen::FrozenExtractor::extract_page_observed`]): a
/// read-only overlay that never feeds back into which triples are
/// extracted.
#[derive(Debug, Clone, PartialEq)]
pub struct PageObservation {
    /// Tokens across the page's analyzed sentences.
    pub tokens: u64,
    /// Tokens absent from the segmentation/PoS lexicon.
    pub oov_tokens: u64,
    /// Per backend (bundle backend order), span confidence of each
    /// decoded candidate before cleaning, in decode order.
    pub confidences: Vec<Vec<f64>>,
}

/// Streaming accumulator that folds per-page extraction results into
/// [`ReferenceStats`]. Fold order does not affect the result except
/// through nothing — all state is commutative counters — so freeze can
/// extract pages concurrently and fold in page order.
pub struct ReferenceBuilder {
    attrs: Vec<String>,
    backends: Vec<String>,
    pages: u64,
    empty_pages: u64,
    total_triples: u64,
    tokens: u64,
    oov_tokens: u64,
    confidence: Vec<Vec<u64>>,
    attr_triples: Vec<u64>,
    attr_values: Vec<BTreeMap<String, u64>>,
    attr_len: Vec<Vec<u64>>,
}

impl ReferenceBuilder {
    /// A builder over the model's (sorted) attribute names and its
    /// backend names.
    pub fn new(attrs: &[String], backends: &[&str]) -> ReferenceBuilder {
        ReferenceBuilder {
            attrs: attrs.to_vec(),
            backends: backends.iter().map(|b| (*b).to_owned()).collect(),
            pages: 0,
            empty_pages: 0,
            total_triples: 0,
            tokens: 0,
            oov_tokens: 0,
            confidence: vec![vec![0; CONF_BUCKETS]; backends.len()],
            attr_triples: vec![0; attrs.len()],
            attr_values: vec![BTreeMap::new(); attrs.len()],
            attr_len: vec![vec![0; LEN_BUCKETS]; attrs.len()],
        }
    }

    /// Folds one page's kept triples and side observations.
    pub fn observe_page(&mut self, triples: &[Triple], obs: &PageObservation) {
        self.pages += 1;
        if triples.is_empty() {
            self.empty_pages += 1;
        }
        self.tokens += obs.tokens;
        self.oov_tokens += obs.oov_tokens;
        for (backend_idx, confs) in obs.confidences.iter().enumerate() {
            if backend_idx >= self.confidence.len() {
                break;
            }
            for &c in confs {
                self.confidence[backend_idx][confidence_bucket(c)] += 1;
            }
        }
        for t in triples {
            let Ok(i) = self.attrs.binary_search(&t.attr) else {
                continue;
            };
            self.total_triples += 1;
            self.attr_triples[i] += 1;
            *self.attr_values[i].entry(t.value.clone()).or_default() += 1;
            self.attr_len[i][value_len_bucket(t.value.chars().count())] += 1;
        }
    }

    /// Finishes into [`ReferenceStats`] (exact top-k per attribute,
    /// count-descending then value-ascending).
    pub fn finish(self) -> ReferenceStats {
        let attrs = self
            .attrs
            .into_iter()
            .zip(self.attr_triples)
            .zip(self.attr_values)
            .zip(self.attr_len)
            .map(|(((attribute, triples), values), value_len)| {
                let mut ranked: Vec<(String, u64)> = values.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                ranked.truncate(TOP_VALUES);
                AttrReference {
                    attribute,
                    triples,
                    top_values: ranked,
                    value_len,
                }
            })
            .collect();
        ReferenceStats {
            pages: self.pages,
            empty_pages: self.empty_pages,
            total_triples: self.total_triples,
            tokens: self.tokens,
            oov_tokens: self.oov_tokens,
            backends: self
                .backends
                .into_iter()
                .zip(self.confidence)
                .map(|(backend, confidence)| BackendReference {
                    backend,
                    confidence,
                })
                .collect(),
            attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(attr: &str, value: &str) -> Triple {
        Triple::new(1, attr.to_owned(), value.to_owned())
    }

    #[test]
    fn buckets_clamp_at_the_edges() {
        assert_eq!(confidence_bucket(0.0), 0);
        assert_eq!(confidence_bucket(0.049), 0);
        assert_eq!(confidence_bucket(0.05), 1);
        assert_eq!(confidence_bucket(1.0), CONF_BUCKETS - 1);
        assert_eq!(confidence_bucket(7.5), CONF_BUCKETS - 1);
        assert_eq!(confidence_bucket(-1.0), 0);
        assert_eq!(value_len_bucket(0), 0);
        assert_eq!(value_len_bucket(1), 0);
        assert_eq!(value_len_bucket(2), 1);
        assert_eq!(value_len_bucket(31), LEN_BUCKETS - 1);
        assert_eq!(value_len_bucket(4000), LEN_BUCKETS - 1);
    }

    #[test]
    fn builder_aggregates_pages_and_ranks_values() {
        let attrs = vec!["color".to_owned(), "weight".to_owned()];
        let mut b = ReferenceBuilder::new(&attrs, &["crf"]);
        let obs = |confs: Vec<f64>| PageObservation {
            tokens: 10,
            oov_tokens: 2,
            confidences: vec![confs],
        };
        b.observe_page(
            &[triple("color", "red"), triple("color", "blue")],
            &obs(vec![0.9, 0.2]),
        );
        b.observe_page(&[triple("color", "red")], &obs(vec![0.95]));
        b.observe_page(&[], &obs(vec![]));
        let stats = b.finish();
        assert_eq!(stats.pages, 3);
        assert_eq!(stats.empty_pages, 1);
        assert_eq!(stats.total_triples, 3);
        assert_eq!(stats.tokens, 30);
        assert_eq!(stats.oov_tokens, 6);
        assert!((stats.empty_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.oov_rate() - 0.2).abs() < 1e-12);
        let color = stats.attr("color").unwrap();
        assert_eq!(color.triples, 2 + 1);
        assert_eq!(
            color.top_values,
            vec![("red".to_owned(), 2), ("blue".to_owned(), 1)]
        );
        assert_eq!(color.value_len.iter().sum::<u64>(), 3);
        // "red"/"blue" land in the 3-char and 4-char buckets.
        assert_eq!(color.value_len[value_len_bucket(3)], 2);
        assert_eq!(color.value_len[value_len_bucket(4)], 1);
        assert!((color.rate(stats.pages) - 1.0).abs() < 1e-12);
        let weight = stats.attr("weight").unwrap();
        assert_eq!(weight.triples, 0);
        assert!(weight.top_values.is_empty());
        // Confidence: 0.9 → bucket 18, 0.95 → bucket 19, 0.2 → bucket 4.
        let crf = &stats.backends[0];
        assert_eq!(crf.backend, "crf");
        assert_eq!(crf.confidence[confidence_bucket(0.9)], 1);
        assert_eq!(crf.confidence[confidence_bucket(0.95)], 1);
        assert_eq!(crf.confidence[confidence_bucket(0.2)], 1);
        assert_eq!(crf.confidence.iter().sum::<u64>(), 3);
    }

    #[test]
    fn top_values_break_count_ties_by_value() {
        let attrs = vec!["a".to_owned()];
        let mut b = ReferenceBuilder::new(&attrs, &[]);
        let obs = PageObservation {
            tokens: 0,
            oov_tokens: 0,
            confidences: vec![],
        };
        b.observe_page(
            &[triple("a", "zz"), triple("a", "mm"), triple("a", "aa")],
            &obs,
        );
        let stats = b.finish();
        let names: Vec<&str> = stats.attrs[0]
            .top_values
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }
}
