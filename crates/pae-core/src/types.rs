//! Shared pipeline types.

use std::collections::HashMap;

/// One extracted `<product, attribute, value>` triple.
///
/// `attr` is the *cluster name* chosen during attribute aggregation
/// (the most frequent merchant alias); `value` is the normalized
/// surface (tokens joined by single spaces).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Product id.
    pub product: u32,
    /// Attribute cluster name (a merchant alias surface).
    pub attr: String,
    /// Normalized value.
    pub value: String,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(product: u32, attr: impl Into<String>, value: impl Into<String>) -> Self {
        Triple {
            product,
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// The value's tokens (normalized values are space-joined).
    pub fn value_tokens(&self) -> Vec<&str> {
        self.value.split(' ').collect()
    }
}

/// The attribute inventory the pipeline works with after aggregation:
/// cluster name → known normalized values.
#[derive(Debug, Clone, Default)]
pub struct AttrTable {
    /// Cluster name → set of values with their observation counts.
    pub values: HashMap<String, HashMap<String, usize>>,
}

impl AttrTable {
    /// Adds one observation of `value` under `attr`.
    pub fn add(&mut self, attr: &str, value: &str) {
        *self
            .values
            .entry(attr.to_owned())
            .or_default()
            .entry(value.to_owned())
            .or_insert(0) += 1;
    }

    /// Attribute names, sorted for determinism.
    pub fn attrs(&self) -> Vec<&str> {
        let mut a: Vec<&str> = self.values.keys().map(String::as_str).collect();
        a.sort_unstable();
        a
    }

    /// Distinct values known for `attr`.
    pub fn values_of(&self, attr: &str) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .values
            .get(attr)
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Total distinct `(attr, value)` pairs.
    pub fn n_pairs(&self) -> usize {
        self.values.values().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_tokens() {
        let t = Triple::new(3, "iro", "2 . 5 kg");
        assert_eq!(t.value_tokens(), vec!["2", ".", "5", "kg"]);
    }

    #[test]
    fn attr_table_counts() {
        let mut t = AttrTable::default();
        t.add("color", "aka");
        t.add("color", "aka");
        t.add("color", "ao");
        t.add("weight", "2 kg");
        assert_eq!(t.attrs(), vec!["color", "weight"]);
        assert_eq!(t.values_of("color"), vec!["aka", "ao"]);
        assert_eq!(t.n_pairs(), 3);
        assert_eq!(t.values["color"]["aka"], 2);
        assert!(t.values_of("missing").is_empty());
    }
}
