#![warn(missing_docs)]

//! The paper's pipeline: bootstrapped product attribute extraction.
//!
//! Implements Figure 1 of the paper end to end:
//!
//! 1. **Pre-processing** — [`corpus`] parses product pages into tagged
//!    sentences; [`seed`] harvests `<attribute, value>` candidates from
//!    dictionary tables, aggregates redundant attribute names, and
//!    cleans values against the query log; [`diversify`] generalizes
//!    the seed's value shapes via PoS-sequence sampling.
//! 2. **Tagging** — [`trainset`] projects the known triples onto the
//!    corpus as BIO labels; [`tagger`] trains a CRF or BiLSTM backend
//!    and decodes new candidate triples.
//! 3. **Cleaning** — [`cleaning::veto`] applies the four syntactic veto
//!    rules; [`cleaning::semantic`] trains word2vec on the corpus each
//!    iteration and removes candidates far from each attribute's
//!    semantic core.
//! 4. **Loop** — [`bootstrap`] iterates tagging+cleaning for N cycles,
//!    snapshotting each iteration for the evaluation harness.
//!
//! [`eval`] computes the paper's metrics (precision with the
//! `maybe_incorrect` convention, product coverage, per-attribute
//! coverage); [`specialized`] trains per-attribute-subset models
//! (§VIII-D); [`provenance`] threads a per-candidate lineage ledger
//! through the loop (origin, model confidence, veto/semantic verdicts,
//! final disposition) when `pae_obs` provenance collection is on.

pub mod bootstrap;
pub mod bundle;
pub mod cleaning;
pub mod config;
pub mod corpus;
pub mod corrections;
pub mod diversify;
pub mod eval;
pub mod frozen;
pub mod provenance;
pub mod quality;
pub mod seed;
pub mod specialized;
pub mod tagger;
pub mod timing;
pub mod trainset;
pub mod types;

pub use bootstrap::{BootstrapOutcome, BootstrapPipeline, CandidateScores, IterationSnapshot};
pub use bundle::{
    read_bundle, read_bundle_with_hash, write_bundle, BundleError, LoadedBundle, BUNDLE_MAGIC,
    BUNDLE_SCHEMA_V1, BUNDLE_SCHEMA_V2, BUNDLE_SCHEMA_VERSION,
};
pub use config::{PipelineConfig, TaggerKind};
pub use corpus::{parse_corpus, Corpus, ProductText};
pub use corrections::Corrections;
pub use eval::{evaluate_pairs, evaluate_triples, EvalReport, PairReport};
pub use frozen::{FreezeError, FrozenExtractor, FrozenModel, FrozenTagger};
pub use provenance::ProvLog;
pub use quality::{AttrReference, BackendReference, PageObservation, ReferenceStats};
pub use tagger::CrfTrainContext;
pub use timing::{CrfStageTimings, PrepTimings, StageTimings};
pub use types::{AttrTable, Triple};
