//! Corpus construction: product pages → tagged sentences + table pairs.

use pae_html::{extract_tables, extract_text, parse, TextOptions};
use pae_synth::Dataset;
use pae_text::{HmmPosTagger, LexiconPosTagger, PosTagger, Sentence, SentenceSplitter, Tokenizer};

/// Which PoS tagger backs the corpus analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosBackend {
    /// Dictionary + character-class rules (deterministic, default).
    Lexicon,
    /// Bigram HMM trained on lexicon-projected silver data.
    Hmm,
}

/// One product's analyzed text.
#[derive(Debug, Clone)]
pub struct ProductText {
    /// Product id.
    pub id: u32,
    /// Sentences (title first), tokenized and PoS-tagged.
    pub sentences: Vec<Sentence>,
}

/// One `(attribute name, value)` pair read from a dictionary table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TablePair {
    /// Product the table belongs to.
    pub product: u32,
    /// Attribute surface name, normalized.
    pub attr: String,
    /// Value, normalized.
    pub value: String,
}

/// Parsed corpus: analyzed free text plus the raw dictionary-table
/// pairs (the seed source).
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Per-product analyzed sentences.
    pub products: Vec<ProductText>,
    /// Raw `(attr, value)` pairs from dictionary tables.
    pub table_pairs: Vec<TablePair>,
}

impl Corpus {
    /// Total sentence count.
    pub fn n_sentences(&self) -> usize {
        self.products.iter().map(|p| p.sentences.len()).sum()
    }

    /// All sentences as plain word lists (word2vec input).
    pub fn word_sentences(&self) -> Vec<Vec<String>> {
        self.products
            .iter()
            .flat_map(|p| {
                p.sentences
                    .iter()
                    .map(|s| s.words().map(str::to_owned).collect())
            })
            .collect()
    }
}

/// Parses every page of `dataset` with the lexicon PoS backend.
pub fn parse_corpus(dataset: &Dataset) -> Corpus {
    parse_corpus_with(dataset, PosBackend::Lexicon)
}

/// Parses every page of `dataset` with the chosen PoS backend.
pub fn parse_corpus_with(dataset: &Dataset, backend: PosBackend) -> Corpus {
    let tokenizer = dataset.tokenizer();
    let lexicon_tagger = LexiconPosTagger::new(dataset.lexicon.clone());
    let splitter = SentenceSplitter::new();

    let tagger: Box<dyn PosTagger> = match backend {
        PosBackend::Lexicon => Box::new(lexicon_tagger.clone()),
        PosBackend::Hmm => {
            // Silver training data: lexicon-tag a sample of the corpus,
            // then train the HMM on it (self-supervision — no human
            // annotation, in the spirit of the paper).
            let mut silver = Vec::new();
            for page in dataset.pages.iter().take(200) {
                let forest = parse(&page.html);
                let text = extract_text(&forest, &TextOptions::default());
                for raw in splitter.split(&text) {
                    let toks = tokenizer.tokenize(&raw);
                    let tags = lexicon_tagger.tag(&toks);
                    silver.push(
                        toks.iter()
                            .zip(&tags)
                            .map(|(t, &g)| (t.text.clone(), g))
                            .collect(),
                    );
                }
            }
            Box::new(HmmPosTagger::train(&silver))
        }
    };

    let mut products = Vec::with_capacity(dataset.pages.len());
    let mut table_pairs = Vec::new();
    for page in &dataset.pages {
        let forest = parse(&page.html);

        // Title + free text (tables excluded — they are the seed).
        let mut sentences = Vec::new();
        for title in pae_html::dom::find_all(&forest, "title") {
            let t = title.text_content();
            if !t.is_empty() {
                sentences.push(Sentence::analyze(&t, tokenizer.as_ref(), tagger.as_ref()));
            }
        }
        let text = extract_text(&forest, &TextOptions::default());
        for raw in splitter.split(&text) {
            let s = Sentence::analyze(&raw, tokenizer.as_ref(), tagger.as_ref());
            if !s.is_empty() {
                sentences.push(s);
            }
        }
        products.push(ProductText {
            id: page.id,
            sentences,
        });

        // Dictionary tables.
        for table in extract_tables(&forest) {
            if let Some(dict) = table.as_dictionary() {
                for (name, value) in dict.pairs {
                    table_pairs.push(TablePair {
                        product: page.id,
                        attr: normalize(tokenizer.as_ref(), &name),
                        value: normalize(tokenizer.as_ref(), &value),
                    });
                }
            }
        }
    }

    Corpus {
        products,
        table_pairs,
    }
}

/// Tokenize-and-rejoin normalization (same convention as the truth).
pub fn normalize(tokenizer: &dyn Tokenizer, raw: &str) -> String {
    pae_synth::dataset::normalize_with(tokenizer, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pae_synth::{CategoryKind, DatasetSpec};

    fn corpus() -> (Dataset, Corpus) {
        let d = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(40)
            .generate();
        let c = parse_corpus(&d);
        (d, c)
    }

    #[test]
    fn every_product_has_sentences() {
        let (d, c) = corpus();
        assert_eq!(c.products.len(), d.pages.len());
        for p in &c.products {
            assert!(!p.sentences.is_empty(), "product {} empty", p.id);
        }
        assert!(c.n_sentences() > d.pages.len());
    }

    #[test]
    fn table_pairs_extracted_and_normalized() {
        let (d, c) = corpus();
        assert!(!c.table_pairs.is_empty());
        for pair in &c.table_pairs {
            assert_eq!(pair.value, d.normalize(&pair.value), "{pair:?}");
        }
    }

    #[test]
    fn hmm_backend_parses_too() {
        let d = DatasetSpec::new(CategoryKind::MailboxDe, 7)
            .products(20)
            .generate();
        let c = parse_corpus_with(&d, PosBackend::Hmm);
        assert_eq!(c.products.len(), 20);
        assert!(c.n_sentences() > 20);
    }

    #[test]
    fn word_sentences_match_token_stream() {
        let (_, c) = corpus();
        let ws = c.word_sentences();
        assert_eq!(ws.len(), c.n_sentences());
        assert!(ws.iter().all(|s| !s.is_empty()));
    }
}
