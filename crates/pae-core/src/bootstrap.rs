//! The bootstrap loop (Figure 1 of the paper).

use pae_synth::Dataset;
use pae_text::LexiconPosTagger;

use crate::cleaning::{
    apply_veto, apply_veto_traced, semantic_clean_traced, semantic_clean_with_baseline, AttrDrift,
    DriftBaseline, SemanticCleanStats, VetoStats,
};
use crate::config::{PipelineConfig, TaggerKind};
use crate::corpus::{parse_corpus_with, Corpus};
use crate::corrections::Corrections;
use crate::diversify::diversify;
use crate::eval::{evaluate_pairs, evaluate_triples, EvalReport, PairReport};
use crate::provenance::ProvLog;
use crate::seed::{build_seed, Seed};
use crate::tagger::{
    extract_candidates, extract_candidates_scored, CrfTrainContext, TrainedTagger,
};
use crate::timing::{span_timed, CrfStageTimings, PrepTimings, StageTimings};
use crate::trainset::{generate_training_set, LabelSpace};
use crate::types::{AttrTable, Triple};

/// State after one Tagger–Cleaner cycle.
#[derive(Debug, Clone)]
pub struct IterationSnapshot {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The dataset after this cycle: everything accumulated so far,
    /// re-cleaned (so it can shrink when cleaning reclaims earlier
    /// errors).
    pub triples: Vec<Triple>,
    /// Raw candidates the tagger produced this cycle.
    pub n_candidates: usize,
    /// Veto-rule removals this cycle.
    pub veto: VetoStats,
    /// Semantic-cleaning removals this cycle.
    pub semantic: SemanticCleanStats,
    /// Per-attribute drift of the accepted values against the
    /// iteration-0 seed (empty when semantic cleaning is disabled or
    /// drift is undefined for every attribute).
    pub drift: Vec<AttrDrift>,
    /// Per-stage wall clock for this cycle.
    pub timings: StageTimings,
}

/// Everything a pipeline run produces.
#[derive(Debug)]
pub struct BootstrapOutcome {
    /// The cleaned seed.
    pub seed: Seed,
    /// The seed table after diversification (equals `seed.table` when
    /// diversification is disabled).
    pub diversified: AttrTable,
    /// The BIO label space over attribute clusters.
    pub label_space: LabelSpace,
    /// One snapshot per bootstrap iteration.
    pub snapshots: Vec<IterationSnapshot>,
    /// Wall clock of the pre-loop stages (seed, diversification).
    pub prep: PrepTimings,
}

impl BootstrapOutcome {
    /// Triples after the last iteration (the seed triples if the loop
    /// ran zero times).
    pub fn final_triples(&self) -> Vec<Triple> {
        match self.snapshots.last() {
            Some(s) => s.triples.clone(),
            None => seed_triples(&self.seed),
        }
    }

    /// Evaluates the final triples.
    pub fn evaluate(&self, dataset: &Dataset) -> EvalReport {
        let _span = pae_obs::span("eval");
        evaluate_triples(&self.final_triples(), &dataset.truth)
    }

    /// Evaluates a specific iteration (1-based; 0 = seed only).
    pub fn evaluate_iteration(&self, iteration: usize, dataset: &Dataset) -> EvalReport {
        if iteration == 0 {
            return evaluate_triples(&seed_triples(&self.seed), &dataset.truth);
        }
        let snap = &self.snapshots[iteration - 1];
        evaluate_triples(&snap.triples, &dataset.truth)
    }

    /// Seed-level report (Table I).
    pub fn seed_report(&self, dataset: &Dataset) -> PairReport {
        evaluate_pairs(&self.seed.table, &self.seed.product_pairs, &dataset.truth)
    }
}

/// Converts the seed's product pairs into triples.
pub fn seed_triples(seed: &Seed) -> Vec<Triple> {
    let mut out: Vec<Triple> = seed
        .product_pairs
        .iter()
        .map(|p| Triple::new(p.product, p.attr.clone(), p.value.clone()))
        .collect();
    out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    out.dedup();
    out
}

/// The end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct BootstrapPipeline {
    config: PipelineConfig,
    corrections: Corrections,
}

impl BootstrapPipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        BootstrapPipeline {
            config,
            corrections: Corrections::new(),
        }
    }

    /// Attaches human corrections (§VIII): applied to the seed before
    /// the loop and to every cycle's output.
    pub fn with_corrections(mut self, corrections: Corrections) -> Self {
        self.corrections = corrections;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Parses the corpus and runs the loop.
    pub fn run(&self, dataset: &Dataset) -> BootstrapOutcome {
        let corpus = parse_corpus_with(dataset, self.config.pos_backend);
        self.run_on_corpus(dataset, &corpus)
    }

    /// Runs the loop on an already-parsed corpus (the experiment
    /// harness parses once and evaluates many configurations).
    pub fn run_on_corpus(&self, dataset: &Dataset, corpus: &Corpus) -> BootstrapOutcome {
        let cfg = &self.config;
        let _run_span = pae_obs::span("bootstrap.run");

        // Pre-processing: seed + diversification (lines 1–5).
        let (mut seed, seed_time) = span_timed("seed", || {
            build_seed(
                corpus,
                &dataset.query_log,
                &cfg.aggregation,
                &cfg.value_clean,
            )
        });
        self.corrections.apply_to_seed(&mut seed);
        if pae_obs::enabled() {
            pae_obs::gauge_set("bootstrap.seed_pairs", &[], seed.product_pairs.len() as f64);
        }
        let (diversified, diversify_time) = span_timed("diversify", || {
            if cfg.use_diversification {
                let pos_tagger = LexiconPosTagger::new(dataset.lexicon.clone());
                let pos_key = |value: &str| -> String {
                    value
                        .split(' ')
                        .map(|t| pos_tagger.tag_word(t).mnemonic())
                        .collect::<Vec<_>>()
                        .join("-")
                };
                diversify(&seed.table, &seed.raw_table, &pos_key, &cfg.diversify)
            } else {
                seed.table.clone()
            }
        });
        let prep = PrepTimings {
            seed: seed_time,
            diversify: diversify_time,
        };

        // Label space over the most substantial clusters.
        let label_space = LabelSpace::new(top_attrs(&diversified, cfg.label_space_cap));

        // Category-level extra values (diversified additions).
        let extra_values: Vec<(String, String)> = diversified
            .attrs()
            .iter()
            .flat_map(|attr| {
                diversified
                    .values_of(attr)
                    .into_iter()
                    .map(|v| (attr.to_string(), v.to_owned()))
                    .collect::<Vec<_>>()
            })
            .collect();

        let word_sentences = corpus.word_sentences();
        // One CRF training context for the whole run: the per-sentence
        // feature cache carries over between cycles (same corpus, new
        // labels), so only genuinely new sentences are re-extracted.
        let mut crf_ctx = CrfTrainContext::new();
        let mut triples = seed_triples(&seed);
        // Drift is always measured against the iteration-0 values,
        // frozen here — not against the previous cycle — so the scores
        // answer "how far has this attribute moved from the seed?".
        let drift_baseline = DriftBaseline::from_triples(&triples);
        let mut snapshots = Vec::with_capacity(cfg.iterations);
        // Lineage ledger (inert unless provenance collection is on).
        // All emission happens here on the main thread, in canonical
        // pair order, so the record stream is deterministic.
        let mut prov = ProvLog::new();
        prov.record_origins(&triples, &extra_values, &self.corrections);
        let backend_name = match cfg.tagger {
            TaggerKind::Crf => "crf",
            TaggerKind::Rnn => "rnn",
            TaggerKind::Ensemble => "ensemble",
        };

        for iteration in 1..=cfg.iterations {
            let _iter_span =
                pae_obs::span_fields("iteration", vec![("n".into(), iteration.into())]);
            // Tagging (lines 10–12).
            let tagged = train_and_extract_timed_with(
                corpus,
                &triples,
                &extra_values,
                &label_space,
                cfg,
                &mut crf_ctx,
            );
            prov.record_candidates(
                iteration,
                backend_name,
                &tagged.candidates,
                tagged.scores.as_ref(),
            );
            let candidates = tagged.candidates;
            let n_candidates = candidates.len();

            // The paper's line 20 (`dataset = clean_ds`) re-derives the
            // dataset from the cleaned tagged data each cycle, so
            // cleaning gets a shot at *everything* accumulated so far —
            // including seed errors — not just this cycle's additions.
            let mut pool = triples.clone();
            pool.extend(candidates);
            pool.sort_by(|a, b| {
                (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value))
            });
            pool.dedup();

            // Cleaning (lines 14–20). The traced variants return the
            // same survivors/stats as the plain ones plus the decision
            // trail; they only run while the ledger is recording.
            let ((pool, veto, veto_decisions), veto_time) = span_timed("veto", || {
                if cfg.use_veto {
                    if prov.active() {
                        apply_veto_traced(pool, cfg.unpopular_keep, cfg.max_value_chars)
                    } else {
                        let (pool, stats) =
                            apply_veto(pool, cfg.unpopular_keep, cfg.max_value_chars);
                        (pool, stats, Vec::new())
                    }
                } else {
                    (pool, VetoStats::default(), Vec::new())
                }
            });
            prov.record_veto(iteration, &veto_decisions);
            let ((pool, semantic, drift, semantic_decisions), semantic_time) =
                span_timed("semantic", || {
                    if cfg.use_semantic {
                        if prov.active() {
                            semantic_clean_traced(
                                pool,
                                &word_sentences,
                                &cfg.semantic,
                                cfg.seed.wrapping_add(iteration as u64),
                                Some(&drift_baseline),
                            )
                        } else {
                            let (pool, stats, drift) = semantic_clean_with_baseline(
                                pool,
                                &word_sentences,
                                &cfg.semantic,
                                cfg.seed.wrapping_add(iteration as u64),
                                Some(&drift_baseline),
                            );
                            (pool, stats, drift, Vec::new())
                        }
                    } else {
                        (pool, SemanticCleanStats::default(), Vec::new(), Vec::new())
                    }
                });
            prov.record_semantic(
                iteration,
                f64::from(cfg.semantic.keep_threshold),
                &semantic_decisions,
            );
            // The corrections span is emitted even when there are no
            // corrections, so every cycle's trace has the same shape.
            let before_corrections = if prov.active() && !self.corrections.is_empty() {
                Some(pool.clone())
            } else {
                None
            };
            let (pool, corrections_time) = span_timed("corrections", || {
                if self.corrections.is_empty() {
                    pool
                } else {
                    self.corrections.apply_to_triples(pool)
                }
            });
            if let Some(before) = &before_corrections {
                prov.record_corrections(iteration, before, &self.corrections);
            }
            let prev_len = triples.len();
            triples = pool;

            if pae_obs::enabled() {
                // Step-indexed series: the per-iteration trajectories
                // behind the paper's Fig. 3/5 curves.
                pae_obs::observe_step("bootstrap.triples", iteration, triples.len() as f64);
                pae_obs::observe_step("bootstrap.candidates", iteration, n_candidates as f64);
                pae_obs::event(
                    "iteration.summary",
                    vec![
                        ("iteration".into(), iteration.into()),
                        ("candidates".into(), n_candidates.into()),
                        ("triples".into(), triples.len().into()),
                        ("veto_dropped".into(), veto.total().into()),
                        ("veto_symbols".into(), veto.symbols.into()),
                        ("veto_markup".into(), veto.markup.into()),
                        ("veto_unpopular".into(), veto.unpopular.into()),
                        ("veto_long".into(), veto.long.into()),
                        ("semantic_removed".into(), semantic.removed.into()),
                        ("semantic_evictions".into(), semantic.evictions.into()),
                    ],
                );
                for d in &drift {
                    pae_obs::gauge_set("semantic.drift", &[("attribute", &d.attr)], d.score);
                    pae_obs::event(
                        "semantic.drift",
                        vec![
                            ("iteration".into(), iteration.into()),
                            ("attribute".into(), d.attr.clone().into()),
                            ("score".into(), d.score.into()),
                            ("n_values".into(), d.n_values.into()),
                            ("n_baseline".into(), d.n_baseline.into()),
                        ],
                    );
                }
            }

            snapshots.push(IterationSnapshot {
                iteration,
                triples: triples.clone(),
                n_candidates,
                veto,
                semantic,
                drift,
                timings: StageTimings {
                    train: tagged.train,
                    extract: tagged.extract,
                    veto: veto_time,
                    semantic: semantic_time,
                    corrections: corrections_time,
                    crf: tagged.crf,
                },
            });

            // Optional convergence-based stopping criterion (§V).
            if cfg.stop_when_gain_below > 0
                && triples.len().saturating_sub(prev_len) < cfg.stop_when_gain_below
            {
                break;
            }
        }

        let outcome = BootstrapOutcome {
            seed,
            diversified,
            label_space,
            snapshots,
            prep,
        };
        prov.finish(&outcome.final_triples());
        outcome
    }
}

/// [`train_and_extract_timed`]'s result: the candidates plus the wall
/// clock of the train and extract stages.
#[derive(Debug)]
pub struct TrainExtract {
    /// Candidate triples, sorted and deduplicated.
    pub candidates: Vec<Triple>,
    /// Decode confidence per candidate, populated only while provenance
    /// collection is enabled (`None` otherwise — the plain extraction
    /// path is untouched).
    pub scores: Option<CandidateScores>,
    /// Tagger-training wall clock (slower backend for the ensemble).
    pub train: std::time::Duration,
    /// Corpus-decoding wall clock (slower backend for the ensemble).
    pub extract: std::time::Duration,
    /// CRF training sub-stage breakdown (zero for the RNN backend).
    pub crf: CrfStageTimings,
}

/// Decode confidences aligned with [`TrainExtract::candidates`], for
/// the provenance ledger. Strictly a read-only overlay: nothing here
/// feeds back into which candidates survive.
#[derive(Debug, Default)]
pub struct CandidateScores {
    /// CRF posterior decode confidence per candidate (empty when the
    /// CRF backend didn't run).
    pub crf: Vec<f64>,
    /// RNN softmax decode confidence per candidate (empty when the RNN
    /// backend didn't run).
    pub rnn: Vec<f64>,
    /// Candidates produced by exactly one backend that the ensemble
    /// intersection dropped: `(triple, backend, confidence)`.
    pub ensemble_dropped: Vec<(Triple, &'static str, f64)>,
}

/// Trains the configured tagger on the current triples and extracts
/// new candidates from the whole corpus. Also used by the specialized
/// per-attribute models (§VIII-D).
pub fn train_and_extract(
    corpus: &Corpus,
    triples: &[Triple],
    extra_values: &[(String, String)],
    space: &LabelSpace,
    cfg: &PipelineConfig,
) -> Vec<Triple> {
    train_and_extract_timed(corpus, triples, extra_values, space, cfg).candidates
}

/// As [`train_and_extract`], but also reports per-stage wall clock.
pub fn train_and_extract_timed(
    corpus: &Corpus,
    triples: &[Triple],
    extra_values: &[(String, String)],
    space: &LabelSpace,
    cfg: &PipelineConfig,
) -> TrainExtract {
    train_and_extract_timed_with(
        corpus,
        triples,
        extra_values,
        space,
        cfg,
        &mut CrfTrainContext::new(),
    )
}

/// Trains one backend under `train`/`extract` spans and decodes the
/// corpus. `train` returns the tagger plus its CRF sub-stage breakdown
/// (zero for non-CRF backends).
fn one_backend(
    corpus: &Corpus,
    space: &LabelSpace,
    backend: &'static str,
    train: impl FnOnce() -> (TrainedTagger, CrfStageTimings),
) -> TrainExtract {
    let (tagger, crf, train_time) = {
        let span = pae_obs::span_fields("train", vec![("backend".into(), backend.into())]);
        let (tagger, crf) = train();
        (tagger, crf, span.finish())
    };
    let (candidates, scores, extract_time) = {
        let span = pae_obs::span_fields("extract", vec![("backend".into(), backend.into())]);
        if pae_obs::provenance_enabled() {
            let scored = extract_candidates_scored(&tagger, corpus, space);
            let mut candidates = Vec::with_capacity(scored.len());
            let mut confs = Vec::with_capacity(scored.len());
            for (t, c) in scored {
                candidates.push(t);
                confs.push(c);
            }
            let scores = if backend == "rnn" {
                CandidateScores {
                    rnn: confs,
                    ..Default::default()
                }
            } else {
                CandidateScores {
                    crf: confs,
                    ..Default::default()
                }
            };
            (candidates, Some(scores), span.finish())
        } else {
            let candidates = extract_candidates(&tagger, corpus, space);
            (candidates, None, span.finish())
        }
    };
    TrainExtract {
        candidates,
        scores,
        train: train_time,
        extract: extract_time,
        crf,
    }
}

/// As [`train_and_extract_timed`], reusing `crf_ctx`'s feature cache
/// across calls (the bootstrap loop holds one context per run).
pub fn train_and_extract_timed_with(
    corpus: &Corpus,
    triples: &[Triple],
    extra_values: &[(String, String)],
    space: &LabelSpace,
    cfg: &PipelineConfig,
    crf_ctx: &mut CrfTrainContext,
) -> TrainExtract {
    let labeled = generate_training_set(corpus, triples, space, extra_values);
    if labeled.is_empty() {
        return TrainExtract {
            candidates: Vec::new(),
            scores: None,
            train: std::time::Duration::ZERO,
            extract: std::time::Duration::ZERO,
            crf: CrfStageTimings::default(),
        };
    }
    match cfg.tagger {
        TaggerKind::Crf => one_backend(corpus, space, "crf", || {
            TrainedTagger::train_crf_with(&labeled, space.n_labels(), &cfg.crf, crf_ctx)
        }),
        TaggerKind::Rnn => one_backend(corpus, space, "rnn", || {
            (
                TrainedTagger::train_rnn(&labeled, space.n_labels(), &cfg.rnn),
                CrfStageTimings::default(),
            )
        }),
        TaggerKind::Ensemble => {
            // Precision-first combination: a candidate must be produced
            // by both backends to survive. Both extractions arrive
            // sorted and deduplicated, so the intersection is a merge.
            // The backends are independent, so they train and decode
            // concurrently on the worker pool; each arm's output only
            // depends on its own seed, so the merge is deterministic.
            let (a, b) = pae_runtime::join(
                || {
                    one_backend(corpus, space, "crf", || {
                        TrainedTagger::train_crf_with(&labeled, space.n_labels(), &cfg.crf, crf_ctx)
                    })
                },
                || {
                    one_backend(corpus, space, "rnn", || {
                        (
                            TrainedTagger::train_rnn(&labeled, space.n_labels(), &cfg.rnn),
                            CrfStageTimings::default(),
                        )
                    })
                },
            );
            let (train, extract) = (a.train.max(b.train), a.extract.max(b.extract));
            let (candidates, scores) = intersect_backends(a.candidates, a.scores, b);
            TrainExtract {
                candidates,
                scores,
                train,
                extract,
                crf: a.crf,
            }
        }
    }
}

/// Intersection of two sorted, deduplicated triple lists.
fn intersect_sorted(a: Vec<Triple>, b: &[Triple]) -> Vec<Triple> {
    let key = |t: &Triple| (t.product, t.attr.clone(), t.value.clone());
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut j = 0;
    for t in a {
        let k = key(&t);
        while j < b.len() && key(&b[j]) < k {
            j += 1;
        }
        if j < b.len() && key(&b[j]) == k {
            out.push(t);
        }
    }
    out
}

/// Ensemble intersection of the CRF arm (`a`) and RNN arm (`b`).
///
/// Without scores this is exactly [`intersect_sorted`]. With scores
/// (provenance enabled) the same merge walk additionally pairs up both
/// backends' confidences for the survivors and collects the
/// one-backend-only candidates the intersection dropped — the triple
/// output is byte-identical either way.
fn intersect_backends(
    a_candidates: Vec<Triple>,
    a_scores: Option<CandidateScores>,
    b: TrainExtract,
) -> (Vec<Triple>, Option<CandidateScores>) {
    let (Some(sa), Some(sb)) = (a_scores, b.scores) else {
        return (intersect_sorted(a_candidates, &b.candidates), None);
    };
    let key = |t: &Triple| (t.product, t.attr.clone(), t.value.clone());
    let mut out = Vec::with_capacity(a_candidates.len().min(b.candidates.len()));
    let mut scores = CandidateScores::default();
    let mut bi = b.candidates.into_iter().enumerate().peekable();
    for (i, t) in a_candidates.into_iter().enumerate() {
        let k = key(&t);
        while let Some((j, bt)) = bi.peek() {
            if key(bt) < k {
                scores
                    .ensemble_dropped
                    .push((bt.clone(), "rnn", sb.rnn[*j]));
                bi.next();
            } else {
                break;
            }
        }
        match bi.peek() {
            Some((j, bt)) if key(bt) == k => {
                scores.crf.push(sa.crf[i]);
                scores.rnn.push(sb.rnn[*j]);
                out.push(t);
                bi.next();
            }
            _ => scores.ensemble_dropped.push((t, "crf", sa.crf[i])),
        }
    }
    for (j, bt) in bi {
        scores.ensemble_dropped.push((bt, "rnn", sb.rnn[j]));
    }
    (out, Some(scores))
}

/// Keeps the `max` highest-mass attribute clusters.
fn top_attrs(table: &AttrTable, max: usize) -> Vec<String> {
    let mut attrs: Vec<(String, usize)> = table
        .values
        .iter()
        .map(|(a, vals)| (a.clone(), vals.values().sum()))
        .collect();
    attrs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    attrs.into_iter().take(max).map(|(a, _)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pae_synth::{CategoryKind, DatasetSpec};

    fn quick_config() -> PipelineConfig {
        let mut cfg = PipelineConfig {
            iterations: 1,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        cfg
    }

    #[test]
    fn pipeline_runs_end_to_end_with_crf() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(80)
            .generate();
        let outcome = BootstrapPipeline::new(quick_config()).run(&dataset);

        let seed_report = outcome.seed_report(&dataset);
        assert!(
            seed_report.pair_precision() > 0.7,
            "seed pair precision {}",
            seed_report.pair_precision()
        );

        let report = outcome.evaluate(&dataset);
        assert!(report.n_triples() > 0, "no triples extracted");
        assert!(
            report.precision() > 0.5,
            "precision {} too low",
            report.precision()
        );
        // Bootstrapping must increase coverage over the seed.
        assert!(
            report.coverage() > seed_report.coverage(),
            "coverage {} !> seed {}",
            report.coverage(),
            seed_report.coverage()
        );
    }

    #[test]
    fn snapshots_grow_the_dataset() {
        let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 7)
            .products(60)
            .generate();
        let mut cfg = quick_config();
        cfg.iterations = 2;
        let outcome = BootstrapPipeline::new(cfg).run(&dataset);
        assert_eq!(outcome.snapshots.len(), 2);
        // Bootstrapping must extract beyond the seed.
        let seed_n = seed_triples(&outcome.seed).len();
        assert!(
            outcome.snapshots[1].triples.len() > seed_n,
            "no growth: {} vs seed {}",
            outcome.snapshots[1].triples.len(),
            seed_n
        );
        assert!(outcome.snapshots[0].n_candidates > 0);
    }

    #[test]
    fn zero_iterations_returns_seed() {
        let dataset = DatasetSpec::new(CategoryKind::Tennis, 3)
            .products(50)
            .generate();
        let mut cfg = quick_config();
        cfg.iterations = 0;
        let outcome = BootstrapPipeline::new(cfg).run(&dataset);
        assert!(outcome.snapshots.is_empty());
        assert_eq!(
            outcome.final_triples().len(),
            seed_triples(&outcome.seed).len()
        );
    }

    #[test]
    fn corrections_remove_vetoed_pairs_from_output() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = crate::corpus::parse_corpus(&dataset);
        let base = BootstrapPipeline::new(quick_config()).run_on_corpus(&dataset, &corpus);
        let triples = base.final_triples();
        assert!(!triples.is_empty());
        let victim = triples[0].clone();

        let corrected = BootstrapPipeline::new(quick_config())
            .with_corrections(
                crate::corrections::Corrections::new().veto_pair(&victim.attr, &victim.value),
            )
            .run_on_corpus(&dataset, &corpus);
        assert!(
            corrected
                .final_triples()
                .iter()
                .all(|t| !(t.attr == victim.attr && t.value == victim.value)),
            "vetoed pair survived"
        );
    }

    #[test]
    fn early_stopping_halts_converged_loop() {
        let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 7)
            .products(50)
            .generate();
        let corpus = crate::corpus::parse_corpus(&dataset);
        let mut cfg = quick_config();
        cfg.iterations = 5;
        cfg.stop_when_gain_below = 10_000; // absurdly high: stop after cycle 1
        let outcome = BootstrapPipeline::new(cfg).run_on_corpus(&dataset, &corpus);
        assert_eq!(outcome.snapshots.len(), 1, "loop should stop immediately");
    }

    #[test]
    fn intersect_sorted_is_set_intersection() {
        let mk = |p: u32, v: &str| Triple::new(p, "a", v);
        let a = vec![mk(0, "x"), mk(1, "y"), mk(2, "z")];
        let b = vec![mk(0, "x"), mk(2, "z"), mk(3, "w")];
        let got = intersect_sorted(a, &b);
        assert_eq!(got, vec![mk(0, "x"), mk(2, "z")]);
        assert!(intersect_sorted(Vec::new(), &b).is_empty());
        assert!(intersect_sorted(vec![mk(9, "q")], &[]).is_empty());
    }

    #[test]
    fn ensemble_extracts_subset_of_both_backends() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = crate::corpus::parse_corpus(&dataset);
        let run = |tagger| {
            let mut cfg = quick_config();
            cfg.tagger = tagger;
            BootstrapPipeline::new(cfg)
                .run_on_corpus(&dataset, &corpus)
                .snapshots[0]
                .n_candidates
        };
        let crf = run(crate::config::TaggerKind::Crf);
        let rnn = run(crate::config::TaggerKind::Rnn);
        let ens = run(crate::config::TaggerKind::Ensemble);
        assert!(ens <= crf, "ensemble {ens} > crf {crf}");
        assert!(ens <= rnn, "ensemble {ens} > rnn {rnn}");
    }

    #[test]
    fn disabled_modules_change_behaviour() {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = crate::corpus::parse_corpus(&dataset);

        let full = BootstrapPipeline::new(quick_config()).run_on_corpus(&dataset, &corpus);
        let no_div = BootstrapPipeline::new(quick_config().without_diversification())
            .run_on_corpus(&dataset, &corpus);
        // Diversification can only extend the seed table.
        assert!(full.diversified.n_pairs() >= no_div.diversified.n_pairs());

        let no_clean = BootstrapPipeline::new(quick_config().without_cleaning())
            .run_on_corpus(&dataset, &corpus);
        let cleaned_n = full.snapshots[0].triples.len();
        let raw_n = no_clean.snapshots[0].triples.len();
        assert!(
            raw_n >= cleaned_n,
            "cleaning should not add triples: {raw_n} vs {cleaned_n}"
        );
    }
}
