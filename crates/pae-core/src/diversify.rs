//! Value diversification (§V-A, a contribution of the paper).
//!
//! Cleaning keeps only popular/queried values, which collapses the
//! *shape* diversity of the seed — e.g. vacuum-cleaner weights end up
//! all-integer, so the tagger later mis-tags `2.5kg` as `5kg`. This
//! module re-adds, for each attribute, the `n` most frequent raw values
//! of each of the attribute's `k` most frequent PoS-tag sequences
//! (`CD-SYM-CD-UNIT` for `1.5kg`), restoring shape coverage without
//! re-admitting arbitrary noise.

use std::collections::HashMap;

use crate::types::AttrTable;

/// Diversification parameters (the paper's `k` and `n`).
#[derive(Debug, Clone)]
pub struct DiversifyConfig {
    /// Number of PoS sequences kept per attribute.
    pub top_k_sequences: usize,
    /// Number of values re-added per kept sequence.
    pub top_n_values: usize,
}

impl Default for DiversifyConfig {
    fn default() -> Self {
        DiversifyConfig {
            top_k_sequences: 3,
            top_n_values: 12,
        }
    }
}

/// Diversifies `cleaned` using the raw candidate set.
///
/// `pos_key` maps a normalized value to its PoS-sequence key.
pub fn diversify(
    cleaned: &AttrTable,
    raw: &AttrTable,
    pos_key: &dyn Fn(&str) -> String,
    config: &DiversifyConfig,
) -> AttrTable {
    let mut out = cleaned.clone();

    for attr in cleaned.attrs() {
        let Some(raw_values) = raw.values.get(attr) else {
            continue;
        };

        // Sequence frequencies over raw observations.
        let mut seq_freq: HashMap<String, usize> = HashMap::new();
        let mut by_seq: HashMap<String, Vec<(&str, usize)>> = HashMap::new();
        for (value, &count) in raw_values {
            let key = pos_key(value);
            *seq_freq.entry(key.clone()).or_insert(0) += count;
            by_seq.entry(key).or_default().push((value, count));
        }

        let mut seqs: Vec<(&String, &usize)> = seq_freq.iter().collect();
        seqs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));

        for (seq, _) in seqs.into_iter().take(config.top_k_sequences) {
            let mut values = by_seq.remove(seq).unwrap_or_default();
            values.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            for (value, count) in values.into_iter().take(config.top_n_values) {
                if !out.values.get(attr).is_some_and(|m| m.contains_key(value)) {
                    for _ in 0..count {
                        out.add(attr, value);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PoS key: digits → CD, unit suffix → UNIT, '.' → SYM, else NN.
    fn toy_pos_key(value: &str) -> String {
        value
            .split(' ')
            .map(|t| {
                if t.chars().all(|c| c.is_ascii_digit()) {
                    "CD"
                } else if t == "." {
                    "SYM"
                } else if t == "kg" {
                    "UNIT"
                } else {
                    "NN"
                }
            })
            .collect::<Vec<_>>()
            .join("-")
    }

    fn add_n(t: &mut AttrTable, attr: &str, value: &str, n: usize) {
        for _ in 0..n {
            t.add(attr, value);
        }
    }

    #[test]
    fn recovers_pruned_decimal_shape() {
        // Raw: integers are popular, decimals rare; cleaning kept only
        // the integers.
        let mut raw = AttrTable::default();
        add_n(&mut raw, "weight", "2 kg", 20);
        add_n(&mut raw, "weight", "3 kg", 15);
        add_n(&mut raw, "weight", "2 . 5 kg", 1);
        add_n(&mut raw, "weight", "1 . 5 kg", 1);
        let mut cleaned = AttrTable::default();
        add_n(&mut cleaned, "weight", "2 kg", 20);
        add_n(&mut cleaned, "weight", "3 kg", 15);

        let out = diversify(&cleaned, &raw, &toy_pos_key, &DiversifyConfig::default());
        let values = out.values_of("weight");
        assert!(values.contains(&"2 . 5 kg"), "{values:?}");
        assert!(values.contains(&"1 . 5 kg"), "{values:?}");
    }

    #[test]
    fn respects_top_k_sequences() {
        let mut raw = AttrTable::default();
        add_n(&mut raw, "a", "1 kg", 10); // CD-UNIT (most frequent)
        add_n(&mut raw, "a", "x", 5); // NN
        add_n(&mut raw, "a", "1 . 5 kg", 1); // CD-SYM-CD-UNIT (least)
        let mut cleaned = AttrTable::default();
        add_n(&mut cleaned, "a", "1 kg", 10);

        let cfg = DiversifyConfig {
            top_k_sequences: 2,
            top_n_values: 10,
        };
        let out = diversify(&cleaned, &raw, &toy_pos_key, &cfg);
        let values = out.values_of("a");
        assert!(values.contains(&"x"));
        assert!(!values.contains(&"1 . 5 kg"), "third sequence must be cut");
    }

    #[test]
    fn respects_top_n_values() {
        let mut raw = AttrTable::default();
        for i in 0..20 {
            add_n(&mut raw, "a", &format!("{i} kg"), 20 - i);
        }
        let cleaned = AttrTable::default(); // nothing survived cleaning
                                            // Empty cleaned table has no attrs to diversify.
        let out = diversify(&cleaned, &raw, &toy_pos_key, &DiversifyConfig::default());
        assert_eq!(out.n_pairs(), 0);

        // With the attr present, only top-n are added.
        let mut cleaned = AttrTable::default();
        add_n(&mut cleaned, "a", "0 kg", 20);
        let cfg = DiversifyConfig {
            top_k_sequences: 1,
            top_n_values: 5,
        };
        let out = diversify(&cleaned, &raw, &toy_pos_key, &cfg);
        assert_eq!(out.values_of("a").len(), 5);
    }

    #[test]
    fn existing_values_are_not_duplicated() {
        let mut raw = AttrTable::default();
        add_n(&mut raw, "a", "2 kg", 5);
        let mut cleaned = AttrTable::default();
        add_n(&mut cleaned, "a", "2 kg", 5);
        let out = diversify(&cleaned, &raw, &toy_pos_key, &DiversifyConfig::default());
        assert_eq!(out.values["a"]["2 kg"], 5);
    }
}
