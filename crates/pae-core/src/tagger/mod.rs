//! Tagger backends (§V-B): CRF and BiLSTM behind one interface.

// The two backends legitimately differ a lot in size; boxing the CRF
// fields would only add indirection on the hot decode path.
#![allow(clippy::large_enum_variant)]

use std::collections::HashMap;

use pae_crf::data::FeatId;
use pae_crf::{CrfModel, ExtractScratch, FeatureExtractor, FeatureIndex, Instance};
use pae_neural::{BiLstmTagger, TaggerConfig};
use pae_text::PosTag;

use crate::config::{CrfOptions, RnnOptions};
use crate::corpus::Corpus;
use crate::timing::CrfStageTimings;
use crate::trainset::{decode_spans, LabelSpace, LabeledSentence};
use crate::types::Triple;

/// Cross-cycle CRF training state: a persistent feature arena plus a
/// per-sentence feature cache.
///
/// The bootstrap loop re-trains on largely the same sentences every
/// cycle (only their labels change), so re-running the feature
/// templates and re-interning every string each cycle is pure waste.
/// The context interns into a private, grow-only [`FeatureIndex`] and
/// caches each sentence's encoded features; at train time the private
/// ids are renumbered in first-encounter order, which reproduces — id
/// for id — what fresh interning over this cycle's sentences would
/// have produced. Training is therefore byte-identical to the
/// context-free path.
///
/// Cache entries are verified against the sentence's words and tags on
/// every hit (keys are `(product, sent_idx)`, which is not injective
/// for synthetic fixtures), so a stale entry can never leak features.
#[derive(Debug, Default)]
pub struct CrfTrainContext {
    index: FeatureIndex,
    cache: HashMap<(u32, usize), CachedSentence>,
    scratch: ExtractScratch,
    window: Option<usize>,
}

#[derive(Debug)]
struct CachedSentence {
    words: Vec<String>,
    pos: Vec<PosTag>,
    /// Per-position feature ids in the context's *private* index.
    feats: Vec<Vec<FeatId>>,
}

impl CrfTrainContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A trained sequence tagger.
pub enum TrainedTagger {
    /// Linear-chain CRF with the paper's feature templates.
    Crf {
        /// The trained model.
        model: CrfModel,
        /// Feature templates.
        extractor: FeatureExtractor,
        /// Frozen feature index.
        index: FeatureIndex,
    },
    /// Char+word BiLSTM.
    Rnn {
        /// The trained network.
        model: BiLstmTagger,
    },
}

impl TrainedTagger {
    /// Trains a CRF on the labelled sentences (fresh feature state;
    /// see [`train_crf_with`](Self::train_crf_with) for the
    /// cross-cycle variant).
    pub fn train_crf(
        sentences: &[LabeledSentence],
        n_labels: usize,
        options: &CrfOptions,
    ) -> TrainedTagger {
        Self::train_crf_with(sentences, n_labels, options, &mut CrfTrainContext::new()).0
    }

    /// Trains a CRF, reusing `ctx`'s feature index and per-sentence
    /// feature cache across calls. Output is byte-identical to
    /// [`train_crf`](Self::train_crf) on the same sentences; the
    /// context only removes repeated extraction work. Also reports the
    /// training sub-stage wall clock.
    pub fn train_crf_with(
        sentences: &[LabeledSentence],
        n_labels: usize,
        options: &CrfOptions,
        ctx: &mut CrfTrainContext,
    ) -> (TrainedTagger, CrfStageTimings) {
        // Cached features depend on the template window; a changed
        // window invalidates everything.
        if ctx.window != Some(options.window) {
            *ctx = CrfTrainContext::new();
            ctx.window = Some(options.window);
        }
        let extractor = FeatureExtractor::new(pae_crf::FeatureTemplates {
            window: options.window,
            max_sentence_bucket: 8,
        });

        let feat_span = pae_obs::span("crf.extract_features");
        // Encode every sentence into the private index (cache hits skip
        // extraction entirely), renumbering private ids in
        // first-encounter order — exactly the ids fresh interning over
        // these sentences would assign.
        let mut remap: Vec<u32> = vec![u32::MAX; ctx.index.len()];
        let mut order: Vec<FeatId> = Vec::new();
        let mut instances: Vec<Instance> = Vec::with_capacity(sentences.len());
        for s in sentences {
            let key = (s.product, s.sent_idx);
            let hit = matches!(
                ctx.cache.get(&key),
                Some(c) if c.words == s.words && c.pos == s.pos
            );
            if !hit {
                let words: Vec<&str> = s.words.iter().map(String::as_str).collect();
                let pos: Vec<&str> = s.pos.iter().map(|p| p.mnemonic()).collect();
                let mut feats = Vec::new();
                extractor.encode_train_into(
                    &words,
                    &pos,
                    s.sent_idx,
                    &mut ctx.index,
                    &mut ctx.scratch,
                    &mut feats,
                );
                ctx.cache.insert(
                    key,
                    CachedSentence {
                        words: s.words.clone(),
                        pos: s.pos.clone(),
                        feats,
                    },
                );
                if remap.len() < ctx.index.len() {
                    remap.resize(ctx.index.len(), u32::MAX);
                }
            }
            let cached = &ctx.cache[&key];
            let features: Vec<Vec<FeatId>> = cached
                .feats
                .iter()
                .map(|fs| {
                    fs.iter()
                        .map(|&pf| {
                            let slot = &mut remap[pf as usize];
                            if *slot == u32::MAX {
                                *slot = order.len() as u32;
                                order.push(pf);
                            }
                            *slot
                        })
                        .collect()
                })
                .collect();
            instances.push(Instance {
                features,
                labels: s.labels.clone(),
            });
        }
        // Public decode index: the renumbered feature strings, interned
        // in public-id order (ids 0..n by construction).
        let index = FeatureIndex::from_names(order.iter().map(|&pf| ctx.index.name_of(pf)));
        let features_time = feat_span.finish();

        // CRFsuite-style minfreq pruning: drop singleton features from
        // the instances. Their ids stay allocated (the weight simply
        // remains zero) — cheap, and decode-time lookups are unchanged.
        if options.min_feature_freq > 1 {
            let mut counts = vec![0usize; index.len()];
            for inst in &instances {
                for feats in &inst.features {
                    for &f in feats {
                        counts[f as usize] += 1;
                    }
                }
            }
            for inst in &mut instances {
                for feats in &mut inst.features {
                    feats.retain(|&f| counts[f as usize] >= options.min_feature_freq);
                }
            }
        }
        let config = pae_crf::TrainConfig {
            l1: options.l1,
            l2: options.l2,
            max_iters: options.max_iters,
            epsilon: 1e-4,
            dense_transitions: false,
        };
        let (model, stats) = pae_crf::train_with_stats(&instances, index.len(), n_labels, &config);
        let timings = CrfStageTimings {
            features: features_time,
            grad: stats.grad_time,
            line_search: stats.line_search_time,
        };
        (
            TrainedTagger::Crf {
                model,
                extractor,
                index,
            },
            timings,
        )
    }

    /// Trains the BiLSTM on the labelled sentences.
    pub fn train_rnn(
        sentences: &[LabeledSentence],
        n_labels: usize,
        options: &RnnOptions,
    ) -> TrainedTagger {
        let data: Vec<(Vec<String>, Vec<usize>)> = sentences
            .iter()
            .map(|s| (s.words.clone(), s.labels.clone()))
            .collect();
        let config = TaggerConfig {
            epochs: options.epochs,
            learning_rate: options.learning_rate,
            word_dim: options.hidden,
            word_hidden: options.hidden,
            seed: options.seed,
            ..Default::default()
        };
        TrainedTagger::Rnn {
            model: BiLstmTagger::train(&data, n_labels, &config),
        }
    }

    /// Tags one sentence.
    pub fn tag(&self, words: &[String], pos: &[PosTag], sent_idx: usize) -> Vec<usize> {
        match self {
            TrainedTagger::Crf {
                model,
                extractor,
                index,
            } => {
                let w: Vec<&str> = words.iter().map(String::as_str).collect();
                let p: Vec<&str> = pos.iter().map(|t| t.mnemonic()).collect();
                let feats = extractor.encode(&w, &p, sent_idx, index);
                model.viterbi(&feats)
            }
            TrainedTagger::Rnn { model } => model.predict(words),
        }
    }

    /// Tags one sentence and reports per-token model confidence: the
    /// CRF's posterior marginal of the decoded label (forward–backward)
    /// or the RNN's softmax probability of the argmax.
    ///
    /// The labels are exactly [`tag`](Self::tag)'s output — confidence
    /// is a read-only overlay used by the provenance subsystem and must
    /// never feed back into what gets extracted.
    pub fn tag_scored(
        &self,
        words: &[String],
        pos: &[PosTag],
        sent_idx: usize,
    ) -> (Vec<usize>, Vec<f64>) {
        match self {
            TrainedTagger::Crf {
                model,
                extractor,
                index,
            } => {
                let w: Vec<&str> = words.iter().map(String::as_str).collect();
                let p: Vec<&str> = pos.iter().map(|t| t.mnemonic()).collect();
                let feats = extractor.encode(&w, &p, sent_idx, index);
                model.viterbi_with_confidence(&feats)
            }
            TrainedTagger::Rnn { model } => {
                let (labels, confidence) = model.predict_with_confidence(words);
                (labels, confidence.into_iter().map(f64::from).collect())
            }
        }
    }
}

/// Runs the tagger over every sentence of the corpus and decodes the
/// BIO output into candidate triples (deduplicated).
///
/// Products are tagged concurrently on the [`pae_runtime`] worker pool
/// (Viterbi decoding is read-only over the trained model); per-product
/// results are concatenated in product order before the canonical
/// sort + dedup, so the output is independent of the thread count.
pub fn extract_candidates(
    tagger: &TrainedTagger,
    corpus: &Corpus,
    space: &LabelSpace,
) -> Vec<Triple> {
    let per_product = pae_runtime::parallel_map(&corpus.products, |_, product| {
        let mut local = Vec::new();
        for (sent_idx, sentence) in product.sentences.iter().enumerate() {
            let words: Vec<String> = sentence.words().map(str::to_owned).collect();
            if words.is_empty() {
                continue;
            }
            let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
            let labels = tagger.tag(&words, &pos, sent_idx);
            for (attr, range) in decode_spans(&labels, space) {
                let value = words[range].join(" ");
                local.push(Triple::new(product.id, space.attrs()[attr].clone(), value));
            }
        }
        local
    });
    let mut out: Vec<Triple> = per_product.into_iter().flatten().collect();
    out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    out.dedup();
    out
}

/// [`extract_candidates`] plus a decode confidence per triple: the mean
/// per-token confidence over the decoded span (CRF posterior marginal
/// or RNN softmax probability; see [`TrainedTagger::tag_scored`]).
///
/// The triple sequence is byte-identical to [`extract_candidates`]'s —
/// same canonical sort, and duplicate sightings collapse to the single
/// highest-confidence one (ties broken by the deterministic sort), so
/// confidence never influences *which* triples come out, only the
/// score attached to them.
pub fn extract_candidates_scored(
    tagger: &TrainedTagger,
    corpus: &Corpus,
    space: &LabelSpace,
) -> Vec<(Triple, f64)> {
    let per_product = pae_runtime::parallel_map(&corpus.products, |_, product| {
        let mut local = Vec::new();
        for (sent_idx, sentence) in product.sentences.iter().enumerate() {
            let words: Vec<String> = sentence.words().map(str::to_owned).collect();
            if words.is_empty() {
                continue;
            }
            let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
            let (labels, confidence) = tagger.tag_scored(&words, &pos, sent_idx);
            for (attr, range) in decode_spans(&labels, space) {
                let span_conf =
                    confidence[range.clone()].iter().sum::<f64>() / range.len().max(1) as f64;
                let value = words[range].join(" ");
                local.push((
                    Triple::new(product.id, space.attrs()[attr].clone(), value),
                    span_conf,
                ));
            }
        }
        local
    });
    let mut out: Vec<(Triple, f64)> = per_product.into_iter().flatten().collect();
    out.sort_by(|a, b| {
        (a.0.product, &a.0.attr, &a.0.value)
            .cmp(&(b.0.product, &b.0.attr, &b.0.value))
            .then(b.1.total_cmp(&a.1))
    });
    out.dedup_by(|next, prev| next.0 == prev.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrfOptions, RnnOptions};

    fn toy_sentences(space: &LabelSpace) -> Vec<LabeledSentence> {
        // "iro : aka" style sentences; attr 0 = color.
        let mk = |words: &[&str], labels: Vec<usize>| LabeledSentence {
            product: 0,
            sent_idx: 0,
            words: words.iter().map(|s| s.to_string()).collect(),
            pos: words.iter().map(|_| PosTag::Noun).collect(),
            labels,
        };
        let b = space.begin(0);
        vec![
            mk(&["iro", ":", "aka"], vec![0, 0, b]),
            mk(&["iro", ":", "ao"], vec![0, 0, b]),
            mk(&["kaban", "wa", "subarashii"], vec![0, 0, 0]),
            mk(&["iro", ":", "kiiro"], vec![0, 0, b]),
            mk(&["aka", "kaban"], vec![b, 0]),
        ]
    }

    #[test]
    fn crf_backend_learns_pattern() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let tagger = TrainedTagger::train_crf(&sentences, space.n_labels(), &CrfOptions::default());
        let words: Vec<String> = ["iro", ":", "momo"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn min_feature_freq_prunes_without_breaking_decode() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let mut options = CrfOptions {
            min_feature_freq: 2,
            ..Default::default()
        };
        options.max_iters = 40;
        let tagger = TrainedTagger::train_crf(&sentences, space.n_labels(), &options);
        let words: Vec<String> = ["iro", ":", "ao"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
    }

    #[test]
    fn context_reuse_is_byte_identical_to_fresh_training() {
        let space = LabelSpace::new(vec!["color".into()]);
        // Distinct (product, sent_idx) keys so cycle 2 actually hits
        // the cache instead of content-mismatching on a shared key.
        let mut sentences = toy_sentences(&space);
        for (i, s) in sentences.iter_mut().enumerate() {
            s.sent_idx = i;
        }
        let options = CrfOptions::default();
        let mut ctx = CrfTrainContext::new();
        // Cycle 1 warms the cache.
        let _ = TrainedTagger::train_crf_with(&sentences, space.n_labels(), &options, &mut ctx);

        // Cycle 2: the bootstrap loop re-labels the same sentences and
        // adds new ones. Flip one label and append a fresh sentence.
        let mut cycle2 = sentences.clone();
        cycle2[4].labels = vec![0, 0];
        let mut extra = cycle2[0].clone();
        extra.sent_idx = 99;
        extra.words = ["iro", ":", "murasaki"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        extra.labels = vec![0, 0, space.begin(0)];
        cycle2.push(extra);

        let (fresh, _) = TrainedTagger::train_crf_with(
            &cycle2,
            space.n_labels(),
            &options,
            &mut CrfTrainContext::new(),
        );
        let (reused, _) =
            TrainedTagger::train_crf_with(&cycle2, space.n_labels(), &options, &mut ctx);
        match (&fresh, &reused) {
            (
                TrainedTagger::Crf {
                    model: ma,
                    index: ia,
                    ..
                },
                TrainedTagger::Crf {
                    model: mb,
                    index: ib,
                    ..
                },
            ) => {
                assert_eq!(ia.len(), ib.len(), "decode index size");
                let (pa, pb) = (ma.view().params, mb.view().params);
                assert_eq!(pa.len(), pb.len());
                for (i, (a, b)) in pa.iter().zip(pb).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} vs {b}");
                }
            }
            _ => panic!("expected CRF taggers"),
        }
    }

    #[test]
    fn stale_cache_entry_is_content_verified() {
        // Two different sentences sharing (product, sent_idx): the
        // second must not be served the first's features.
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space); // all share key (0, 0)
        let options = CrfOptions::default();
        let (fresh, _) = TrainedTagger::train_crf_with(
            &sentences,
            space.n_labels(),
            &options,
            &mut CrfTrainContext::new(),
        );
        // A context pre-warmed on the *reversed* sentence list must
        // still produce the identical model.
        let mut ctx = CrfTrainContext::new();
        let reversed: Vec<_> = sentences.iter().rev().cloned().collect();
        let _ = TrainedTagger::train_crf_with(&reversed, space.n_labels(), &options, &mut ctx);
        let (reused, _) =
            TrainedTagger::train_crf_with(&sentences, space.n_labels(), &options, &mut ctx);
        match (&fresh, &reused) {
            (TrainedTagger::Crf { model: ma, .. }, TrainedTagger::Crf { model: mb, .. }) => {
                let (pa, pb) = (ma.view().params, mb.view().params);
                assert_eq!(pa.len(), pb.len());
                for (i, (a, b)) in pa.iter().zip(pb).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "param {i}");
                }
            }
            _ => panic!("expected CRF taggers"),
        }
    }

    #[test]
    fn rnn_backend_learns_pattern() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let options = RnnOptions {
            epochs: 80,
            ..Default::default()
        };
        let tagger = TrainedTagger::train_rnn(&sentences, space.n_labels(), &options);
        let words: Vec<String> = ["iro", ":", "aka"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
    }
}
