//! Tagger backends (§V-B): CRF and BiLSTM behind one interface.

// The two backends legitimately differ a lot in size; boxing the CRF
// fields would only add indirection on the hot decode path.
#![allow(clippy::large_enum_variant)]

use pae_crf::{CrfModel, FeatureExtractor, FeatureIndex, Instance};
use pae_neural::{BiLstmTagger, TaggerConfig};
use pae_text::PosTag;

use crate::config::{CrfOptions, RnnOptions};
use crate::corpus::Corpus;
use crate::trainset::{decode_spans, LabelSpace, LabeledSentence};
use crate::types::Triple;

/// A trained sequence tagger.
pub enum TrainedTagger {
    /// Linear-chain CRF with the paper's feature templates.
    Crf {
        /// The trained model.
        model: CrfModel,
        /// Feature templates.
        extractor: FeatureExtractor,
        /// Frozen feature index.
        index: FeatureIndex,
    },
    /// Char+word BiLSTM.
    Rnn {
        /// The trained network.
        model: BiLstmTagger,
    },
}

impl TrainedTagger {
    /// Trains a CRF on the labelled sentences.
    pub fn train_crf(
        sentences: &[LabeledSentence],
        n_labels: usize,
        options: &CrfOptions,
    ) -> TrainedTagger {
        let extractor = FeatureExtractor::new(pae_crf::FeatureTemplates {
            window: options.window,
            max_sentence_bucket: 8,
        });
        let mut index = FeatureIndex::new();
        let mut instances: Vec<Instance> = sentences
            .iter()
            .map(|s| {
                let words: Vec<&str> = s.words.iter().map(String::as_str).collect();
                let pos: Vec<&str> = s.pos.iter().map(|p| p.mnemonic()).collect();
                Instance {
                    features: extractor.encode_train(&words, &pos, s.sent_idx, &mut index),
                    labels: s.labels.clone(),
                }
            })
            .collect();

        // CRFsuite-style minfreq pruning: drop singleton features from
        // the instances. Their ids stay allocated (the weight simply
        // remains zero) — cheap, and decode-time lookups are unchanged.
        if options.min_feature_freq > 1 {
            let mut counts = vec![0usize; index.len()];
            for inst in &instances {
                for feats in &inst.features {
                    for &f in feats {
                        counts[f as usize] += 1;
                    }
                }
            }
            for inst in &mut instances {
                for feats in &mut inst.features {
                    feats.retain(|&f| counts[f as usize] >= options.min_feature_freq);
                }
            }
        }
        let config = pae_crf::TrainConfig {
            l1: options.l1,
            l2: options.l2,
            max_iters: options.max_iters,
            epsilon: 1e-4,
            dense_transitions: false,
        };
        let model = pae_crf::train(&instances, index.len(), n_labels, &config);
        TrainedTagger::Crf {
            model,
            extractor,
            index,
        }
    }

    /// Trains the BiLSTM on the labelled sentences.
    pub fn train_rnn(
        sentences: &[LabeledSentence],
        n_labels: usize,
        options: &RnnOptions,
    ) -> TrainedTagger {
        let data: Vec<(Vec<String>, Vec<usize>)> = sentences
            .iter()
            .map(|s| (s.words.clone(), s.labels.clone()))
            .collect();
        let config = TaggerConfig {
            epochs: options.epochs,
            learning_rate: options.learning_rate,
            word_dim: options.hidden,
            word_hidden: options.hidden,
            seed: options.seed,
            ..Default::default()
        };
        TrainedTagger::Rnn {
            model: BiLstmTagger::train(&data, n_labels, &config),
        }
    }

    /// Tags one sentence.
    pub fn tag(&self, words: &[String], pos: &[PosTag], sent_idx: usize) -> Vec<usize> {
        match self {
            TrainedTagger::Crf {
                model,
                extractor,
                index,
            } => {
                let w: Vec<&str> = words.iter().map(String::as_str).collect();
                let p: Vec<&str> = pos.iter().map(|t| t.mnemonic()).collect();
                let feats = extractor.encode(&w, &p, sent_idx, index);
                model.viterbi(&feats)
            }
            TrainedTagger::Rnn { model } => model.predict(words),
        }
    }
}

/// Runs the tagger over every sentence of the corpus and decodes the
/// BIO output into candidate triples (deduplicated).
///
/// Products are tagged concurrently on the [`pae_runtime`] worker pool
/// (Viterbi decoding is read-only over the trained model); per-product
/// results are concatenated in product order before the canonical
/// sort + dedup, so the output is independent of the thread count.
pub fn extract_candidates(
    tagger: &TrainedTagger,
    corpus: &Corpus,
    space: &LabelSpace,
) -> Vec<Triple> {
    let per_product = pae_runtime::parallel_map(&corpus.products, |_, product| {
        let mut local = Vec::new();
        for (sent_idx, sentence) in product.sentences.iter().enumerate() {
            let words: Vec<String> = sentence.words().map(str::to_owned).collect();
            if words.is_empty() {
                continue;
            }
            let pos: Vec<PosTag> = sentence.tokens.iter().map(|t| t.pos).collect();
            let labels = tagger.tag(&words, &pos, sent_idx);
            for (attr, range) in decode_spans(&labels, space) {
                let value = words[range].join(" ");
                local.push(Triple::new(product.id, space.attrs()[attr].clone(), value));
            }
        }
        local
    });
    let mut out: Vec<Triple> = per_product.into_iter().flatten().collect();
    out.sort_by(|a, b| (a.product, &a.attr, &a.value).cmp(&(b.product, &b.attr, &b.value)));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrfOptions, RnnOptions};

    fn toy_sentences(space: &LabelSpace) -> Vec<LabeledSentence> {
        // "iro : aka" style sentences; attr 0 = color.
        let mk = |words: &[&str], labels: Vec<usize>| LabeledSentence {
            product: 0,
            sent_idx: 0,
            words: words.iter().map(|s| s.to_string()).collect(),
            pos: words.iter().map(|_| PosTag::Noun).collect(),
            labels,
        };
        let b = space.begin(0);
        vec![
            mk(&["iro", ":", "aka"], vec![0, 0, b]),
            mk(&["iro", ":", "ao"], vec![0, 0, b]),
            mk(&["kaban", "wa", "subarashii"], vec![0, 0, 0]),
            mk(&["iro", ":", "kiiro"], vec![0, 0, b]),
            mk(&["aka", "kaban"], vec![b, 0]),
        ]
    }

    #[test]
    fn crf_backend_learns_pattern() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let tagger = TrainedTagger::train_crf(&sentences, space.n_labels(), &CrfOptions::default());
        let words: Vec<String> = ["iro", ":", "momo"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn min_feature_freq_prunes_without_breaking_decode() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let mut options = CrfOptions {
            min_feature_freq: 2,
            ..Default::default()
        };
        options.max_iters = 40;
        let tagger = TrainedTagger::train_crf(&sentences, space.n_labels(), &options);
        let words: Vec<String> = ["iro", ":", "ao"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
    }

    #[test]
    fn rnn_backend_learns_pattern() {
        let space = LabelSpace::new(vec!["color".into()]);
        let sentences = toy_sentences(&space);
        let options = RnnOptions {
            epochs: 80,
            ..Default::default()
        };
        let tagger = TrainedTagger::train_rnn(&sentences, space.n_labels(), &options);
        let words: Vec<String> = ["iro", ":", "aka"].iter().map(|s| s.to_string()).collect();
        let pos = vec![PosTag::Noun; 3];
        let labels = tagger.tag(&words, &pos, 0);
        assert_eq!(labels[2], space.begin(0), "labels: {labels:?}");
    }
}
