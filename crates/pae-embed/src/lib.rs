#![warn(missing_docs)]

//! word2vec skip-gram with negative sampling (SGNS), from scratch.
//!
//! The paper's semantic-cleaning module trains word2vec *on the product
//! corpus in every bootstrap iteration* (pre-trained embeddings cannot
//! cover the newly discovered domain entities), groups multiword
//! attribute values into single tokens, and measures semantic closeness
//! with a multiplicative combination of cosine similarities.
//!
//! * [`vocab`] — frequency-filtered vocabulary with subsampling weights;
//! * [`sampler`] — the unigram^0.75 negative-sampling table;
//! * [`sgns`] — the trainer ([`W2vConfig`], [`W2vModel`]);
//! * [`phrases`] — multiword grouping (`100% cotton` → `100%_cotton`);
//! * [`similarity`] — cosine and multiplicative set similarity.

pub mod phrases;
pub mod sampler;
pub mod sgns;
pub mod similarity;
pub mod vocab;

pub use phrases::group_phrases;
pub use sgns::{W2vConfig, W2vModel};
pub use similarity::{cosine, multiplicative_similarity};
pub use vocab::W2vVocab;
