//! Cosine and multiplicative set similarity.

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector has zero norm.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Multiplicative combination of the cosine similarities between a
/// candidate and every member of a core set (the paper's footnote 4).
///
/// Each cosine is mapped to `(1 + cos) / 2 ∈ [0, 1]` before the product
/// (the standard trick for multiplicative combination, which is
/// undefined for negative factors), and the geometric mean is returned
/// so the score is comparable across core sets of different sizes.
/// Returns `0.0` for an empty core.
pub fn multiplicative_similarity(candidate: &[f32], core: &[&[f32]]) -> f32 {
    if core.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0f64;
    for member in core {
        let shifted = ((1.0 + cosine(candidate, member)) / 2.0).clamp(1e-6, 1.0);
        log_sum += (shifted as f64).ln();
    }
    (log_sum / core.len() as f64).exp() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vectors_are_neutral() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn scale_invariance() {
        let a = [0.3, -0.7, 0.2];
        let b = [0.6, -1.4, 0.4];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiplicative_prefers_aligned_candidates() {
        let core: Vec<&[f32]> = vec![&[1.0, 0.0], &[0.9, 0.1]];
        let aligned = multiplicative_similarity(&[1.0, 0.05], &core);
        let orthogonal = multiplicative_similarity(&[0.0, 1.0], &core);
        let opposed = multiplicative_similarity(&[-1.0, 0.0], &core);
        assert!(aligned > orthogonal, "{aligned} vs {orthogonal}");
        assert!(orthogonal > opposed, "{orthogonal} vs {opposed}");
    }

    #[test]
    fn multiplicative_is_size_comparable() {
        // Duplicating the core members must not change the geometric mean.
        let small: Vec<&[f32]> = vec![&[1.0, 0.0]];
        let big: Vec<&[f32]> = vec![&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]];
        let cand = [0.7, 0.7];
        let a = multiplicative_similarity(&cand, &small);
        let b = multiplicative_similarity(&cand, &big);
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn empty_core_scores_zero() {
        assert_eq!(multiplicative_similarity(&[1.0], &[]), 0.0);
    }
}
