//! Skip-gram with negative sampling: the trainer and trained model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sampler::NegativeSampler;
use crate::vocab::W2vVocab;

/// SGNS hyperparameters.
#[derive(Debug, Clone)]
pub struct W2vConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum context window radius (the effective radius is sampled
    /// uniformly from `1..=window` per center, as in word2vec).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate, linearly decayed to 1e-4 of itself.
    pub learning_rate: f32,
    /// Minimum corpus frequency for a word to be retained.
    pub min_count: u64,
    /// Subsampling threshold (`0.0` disables).
    pub subsample: f64,
    /// RNG seed — training is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> Self {
        W2vConfig {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 3,
            learning_rate: 0.025,
            min_count: 2,
            subsample: 1e-3,
            seed: 1,
        }
    }
}

/// A trained SGNS model: input vectors per retained vocabulary word.
#[derive(Debug, Clone)]
pub struct W2vModel {
    vocab: W2vVocab,
    dim: usize,
    /// Input embeddings, row-major `[vocab.len() × dim]`.
    vectors: Vec<f32>,
}

impl W2vModel {
    /// Trains on `sentences` (each a list of surface tokens).
    ///
    /// Returns `None` when the filtered vocabulary is empty — the
    /// semantic-cleaning module treats that as "no semantic evidence".
    pub fn train(sentences: &[Vec<String>], config: &W2vConfig) -> Option<Self> {
        let _span = pae_obs::span("w2v.train");
        let vocab = W2vVocab::build(sentences, config.min_count);
        if vocab.is_empty() {
            return None;
        }
        let dim = config.dim;
        let v = vocab.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Input vectors: uniform in [-0.5/dim, 0.5/dim]; output: zeros.
        let mut syn0: Vec<f32> = (0..v * dim)
            .map(|_| (rng.random_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut syn1: Vec<f32> = vec![0.0; v * dim];

        let sampler = NegativeSampler::new(&vocab, (v * 64).max(1 << 14));

        // Pre-encode sentences as ids.
        let encoded: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|w| vocab.id(w)).collect())
            .filter(|s: &Vec<usize>| s.len() >= 2)
            .collect();
        if encoded.is_empty() {
            return Some(W2vModel {
                vocab,
                dim,
                vectors: syn0,
            });
        }

        let total_steps = (config.epochs * encoded.len()).max(1);
        let mut step = 0usize;
        let mut grad = vec![0.0f32; dim];

        for _epoch in 0..config.epochs {
            for sent in &encoded {
                let lr = (config.learning_rate * (1.0 - step as f32 / total_steps as f32))
                    .max(config.learning_rate * 1e-4);
                step += 1;

                // Subsample the sentence.
                let kept: Vec<usize> = sent
                    .iter()
                    .copied()
                    .filter(|&w| {
                        config.subsample <= 0.0
                            || rng.random_range(0.0..1.0)
                                < vocab.keep_probability(w, config.subsample)
                    })
                    .collect();
                if kept.len() < 2 {
                    continue;
                }

                for (pos, &center) in kept.iter().enumerate() {
                    let radius = rng.random_range(1..=config.window.max(1));
                    let lo = pos.saturating_sub(radius);
                    let hi = (pos + radius + 1).min(kept.len());
                    #[allow(clippy::needless_range_loop)]
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = kept[ctx_pos];
                        // One positive + `negative` negatives.
                        grad.fill(0.0);
                        let ci = context * dim;
                        for k in 0..=config.negative {
                            let (target, label) = if k == 0 {
                                (center, 1.0f32)
                            } else {
                                let mut neg = sampler.sample(&mut rng);
                                if neg == center {
                                    neg = sampler.sample(&mut rng);
                                }
                                (neg, 0.0)
                            };
                            let ti = target * dim;
                            let mut dot = 0.0f32;
                            for d in 0..dim {
                                dot += syn0[ci + d] * syn1[ti + d];
                            }
                            let pred = sigmoid(dot);
                            let g = (label - pred) * lr;
                            for d in 0..dim {
                                grad[d] += g * syn1[ti + d];
                                syn1[ti + d] += g * syn0[ci + d];
                            }
                        }
                        for d in 0..dim {
                            syn0[ci + d] += grad[d];
                        }
                    }
                }
            }
        }

        if pae_obs::enabled() {
            pae_obs::counter_add("w2v.retrains", &[], 1);
            pae_obs::counter_add("w2v.train_steps", &[], step as u64);
            pae_obs::gauge_set("w2v.vocab_size", &[], v as f64);
            pae_obs::gauge_set("w2v.sentences", &[], encoded.len() as f64);
        }
        Some(W2vModel {
            vocab,
            dim,
            vectors: syn0,
        })
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The training vocabulary.
    pub fn vocab(&self) -> &W2vVocab {
        &self.vocab
    }

    /// Input vector for `word`, if retained.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        let id = self.vocab.id(word)?;
        Some(&self.vectors[id * self.dim..(id + 1) * self.dim])
    }

    /// Cosine similarity between two words; `None` if either is OOV.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        Some(crate::similarity::cosine(self.vector(a)?, self.vector(b)?))
    }

    /// All `(word, vector)` entries sorted by word — the deterministic
    /// export order used when freezing embeddings into a model bundle
    /// (vocabulary ids are frequency-ranked and therefore stable, but
    /// a lexicographic order makes the artifact independent of the
    /// ranking tie-break).
    pub fn entries(&self) -> Vec<(&str, &[f32])> {
        let mut out: Vec<(&str, &[f32])> = (0..self.vocab.len())
            .map(|id| {
                (
                    self.vocab.word(id),
                    &self.vectors[id * self.dim..(id + 1) * self.dim],
                )
            })
            .collect();
        out.sort_by_key(|&(w, _)| w);
        out
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus with two clear distributional clusters: colors appear in
    /// `color : X bag` contexts, digits in `weight : N kg` contexts.
    fn clustered_corpus() -> Vec<Vec<String>> {
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        let mut out = Vec::new();
        let colors = ["red", "blue", "green", "pink"];
        let digits = ["2", "3", "4", "5"];
        for round in 0..60 {
            let c = colors[round % colors.len()];
            let d = digits[round % digits.len()];
            out.push(mk(&format!("color : {c} nice bag")));
            out.push(mk(&format!("the bag is {c} today")));
            out.push(mk(&format!("weight : {d} kg heavy")));
            out.push(mk(&format!("it weighs {d} kg exactly")));
        }
        out
    }

    fn trained() -> W2vModel {
        let cfg = W2vConfig {
            dim: 24,
            window: 3,
            negative: 5,
            epochs: 12,
            min_count: 2,
            subsample: 0.0,
            seed: 42,
            ..Default::default()
        };
        W2vModel::train(&clustered_corpus(), &cfg).expect("non-empty vocab")
    }

    #[test]
    fn distributional_clusters_emerge() {
        let m = trained();
        let same = m.cosine("red", "blue").unwrap();
        let cross = m.cosine("red", "3").unwrap();
        assert!(
            same > cross,
            "cos(red,blue)={same} should exceed cos(red,3)={cross}"
        );
        let same_num = m.cosine("2", "4").unwrap();
        let cross_num = m.cosine("2", "green").unwrap();
        assert!(same_num > cross_num, "{same_num} vs {cross_num}");
    }

    #[test]
    fn training_is_deterministic() {
        let a = trained();
        let b = trained();
        assert_eq!(a.vector("red").unwrap(), b.vector("red").unwrap());
    }

    #[test]
    fn oov_words_have_no_vector() {
        let m = trained();
        assert!(m.vector("zzzzz").is_none());
        assert!(m.cosine("red", "zzzzz").is_none());
    }

    #[test]
    fn empty_corpus_yields_none() {
        assert!(W2vModel::train(&[], &W2vConfig::default()).is_none());
    }

    #[test]
    fn min_count_prunes_rare_words() {
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        let corpus = vec![mk("a b a b a b"), mk("a b singleton")];
        let cfg = W2vConfig {
            min_count: 2,
            epochs: 1,
            ..Default::default()
        };
        let m = W2vModel::train(&corpus, &cfg).unwrap();
        assert!(m.vector("singleton").is_none());
        assert!(m.vector("a").is_some());
    }
}
