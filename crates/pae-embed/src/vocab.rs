//! Frequency-filtered vocabulary for SGNS training.

use std::collections::HashMap;

/// Vocabulary over a training corpus.
///
/// Words below `min_count` are dropped. Ids are assigned by descending
/// frequency with ties broken lexicographically, so vocabulary
/// construction is fully deterministic.
#[derive(Debug, Clone)]
pub struct W2vVocab {
    index: HashMap<String, usize>,
    words: Vec<String>,
    counts: Vec<u64>,
    total_tokens: u64,
}

impl W2vVocab {
    /// Builds the vocabulary from sentences of surface tokens.
    pub fn build(sentences: &[Vec<String>], min_count: u64) -> Self {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        let mut total = 0u64;
        for sent in sentences {
            for w in sent {
                *freq.entry(w.as_str()).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut items: Vec<(&str, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut index = HashMap::with_capacity(items.len());
        let mut words = Vec::with_capacity(items.len());
        let mut counts = Vec::with_capacity(items.len());
        for (i, (w, c)) in items.into_iter().enumerate() {
            index.insert(w.to_owned(), i);
            words.push(w.to_owned());
            counts.push(c);
        }
        W2vVocab {
            index,
            words,
            counts,
            total_tokens: total,
        }
    }

    /// Id of `word`, if retained.
    pub fn id(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Surface form for `id`.
    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }

    /// Corpus frequency of the word with `id`.
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Number of retained words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word was retained.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total tokens seen during construction (before filtering).
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// word2vec subsampling keep-probability for the word with `id`:
    /// `min(1, sqrt(t/f) + t/f)` where `f` is the corpus-relative
    /// frequency and `t` the subsample threshold.
    pub fn keep_probability(&self, id: usize, threshold: f64) -> f64 {
        if threshold <= 0.0 {
            return 1.0;
        }
        let f = self.counts[id] as f64 / self.total_tokens.max(1) as f64;
        let ratio = threshold / f;
        (ratio.sqrt() + ratio).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        vec![mk("a a a b b c"), mk("a b rare")]
    }

    #[test]
    fn frequency_ordering_is_deterministic() {
        let v = W2vVocab::build(&corpus(), 1);
        assert_eq!(v.word(0), "a"); // 4 occurrences
        assert_eq!(v.word(1), "b"); // 3
                                    // c and rare both have 1: lexicographic tie-break.
        assert_eq!(v.word(2), "c");
        assert_eq!(v.word(3), "rare");
        assert_eq!(v.total_tokens(), 9);
    }

    #[test]
    fn min_count_filters() {
        let v = W2vVocab::build(&corpus(), 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.id("c"), None);
        assert_eq!(v.id("a"), Some(0));
    }

    #[test]
    fn keep_probability_decreases_with_frequency() {
        let v = W2vVocab::build(&corpus(), 1);
        let frequent = v.keep_probability(0, 1e-2);
        let rare = v.keep_probability(3, 1e-2);
        assert!(frequent < rare);
        assert!(rare <= 1.0);
        // Threshold 0 disables subsampling.
        assert_eq!(v.keep_probability(0, 0.0), 1.0);
    }

    #[test]
    fn empty_corpus() {
        let v = W2vVocab::build(&[], 1);
        assert!(v.is_empty());
        assert_eq!(v.total_tokens(), 0);
    }
}
