//! Multiword phrase grouping.
//!
//! The semantic-cleaning module's first step (§V-C): *"Group multiword
//! attribute values tagged by the model as a single word"*, so each
//! value gets one embedding. `100 % cotton` becomes the single token
//! `100%_cotton`-style `100_%_cotton`.

use std::collections::HashMap;

/// Joins known multiword phrases into single underscore-joined tokens.
///
/// `phrases` are token sequences (length ≥ 2). Matching is greedy and
/// longest-first at each position; single-token phrases are ignored.
pub fn group_phrases(sentences: &[Vec<String>], phrases: &[Vec<String>]) -> Vec<Vec<String>> {
    // Index phrases by first token for O(1) candidate lookup.
    let mut by_first: HashMap<&str, Vec<&Vec<String>>> = HashMap::new();
    for p in phrases {
        if p.len() >= 2 {
            by_first.entry(p[0].as_str()).or_default().push(p);
        }
    }
    for list in by_first.values_mut() {
        list.sort_by_key(|p| std::cmp::Reverse(p.len()));
    }

    sentences
        .iter()
        .map(|sent| {
            let mut out = Vec::with_capacity(sent.len());
            let mut i = 0;
            while i < sent.len() {
                let mut matched = false;
                if let Some(cands) = by_first.get(sent[i].as_str()) {
                    for cand in cands {
                        if i + cand.len() <= sent.len()
                            && sent[i..i + cand.len()]
                                .iter()
                                .zip(cand.iter())
                                .all(|(a, b)| a == b)
                        {
                            out.push(join_phrase(cand));
                            i += cand.len();
                            matched = true;
                            break;
                        }
                    }
                }
                if !matched {
                    out.push(sent[i].clone());
                    i += 1;
                }
            }
            out
        })
        .collect()
}

/// Canonical single-token form of a multiword phrase.
pub fn join_phrase(tokens: &[String]) -> String {
    tokens.join("_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(s: &str) -> Vec<String> {
        s.split(' ').map(str::to_owned).collect()
    }

    #[test]
    fn groups_known_phrases() {
        let sentences = vec![mk("material is 100 % cotton today")];
        let phrases = vec![mk("100 % cotton")];
        let out = group_phrases(&sentences, &phrases);
        assert_eq!(out[0], mk("material is 100_%_cotton today"));
    }

    #[test]
    fn longest_phrase_wins() {
        let sentences = vec![mk("deep sky blue bag")];
        let phrases = vec![mk("deep sky"), mk("deep sky blue")];
        let out = group_phrases(&sentences, &phrases);
        assert_eq!(out[0], mk("deep_sky_blue bag"));
    }

    #[test]
    fn non_overlapping_repeats() {
        let sentences = vec![mk("a b a b")];
        let phrases = vec![mk("a b")];
        let out = group_phrases(&sentences, &phrases);
        assert_eq!(out[0], mk("a_b a_b"));
    }

    #[test]
    fn single_token_phrases_ignored() {
        let sentences = vec![mk("red bag")];
        let phrases = vec![vec!["red".to_owned()]];
        let out = group_phrases(&sentences, &phrases);
        assert_eq!(out[0], mk("red bag"));
    }

    #[test]
    fn no_phrases_is_identity() {
        let sentences = vec![mk("x y z")];
        let out = group_phrases(&sentences, &[]);
        assert_eq!(out, sentences);
    }

    #[test]
    fn partial_prefix_does_not_match() {
        let sentences = vec![mk("100 % wool")];
        let phrases = vec![mk("100 % cotton")];
        let out = group_phrases(&sentences, &phrases);
        assert_eq!(out[0], mk("100 % wool"));
    }
}
