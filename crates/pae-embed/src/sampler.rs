//! Unigram^0.75 negative-sampling table.

use rand::{Rng, RngExt};

use crate::vocab::W2vVocab;

/// Precomputed table for drawing negative samples proportionally to
/// `count(w)^0.75`, as in the original word2vec implementation.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    table: Vec<u32>,
}

impl NegativeSampler {
    /// Builds the table. `table_size` trades memory for fidelity; a few
    /// hundred entries per word is plenty at our corpus sizes.
    pub fn new(vocab: &W2vVocab, table_size: usize) -> Self {
        assert!(!vocab.is_empty(), "cannot sample from an empty vocabulary");
        let power = 0.75;
        let total: f64 = (0..vocab.len())
            .map(|i| (vocab.count(i) as f64).powf(power))
            .sum();
        let mut table = Vec::with_capacity(table_size);
        let mut cumulative = (vocab.count(0) as f64).powf(power) / total;
        let mut word = 0usize;
        for i in 0..table_size {
            table.push(word as u32);
            if (i + 1) as f64 / table_size as f64 > cumulative && word + 1 < vocab.len() {
                word += 1;
                cumulative += (vocab.count(word) as f64).powf(power) / total;
            }
        }
        NegativeSampler { table }
    }

    /// Draws one word id.
    pub fn sample<R: Rng + RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        self.table[rng.random_range(0..self.table.len())] as usize
    }

    /// Table length (for tests).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vocab() -> W2vVocab {
        let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
        // "a" 8x, "b" 2x, "c" 1x
        W2vVocab::build(&[mk("a a a a a a a a b b c")], 1)
    }

    #[test]
    fn sampling_roughly_follows_powered_counts() {
        let v = vocab();
        let sampler = NegativeSampler::new(&v, 10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = [0usize; 3];
        for _ in 0..30_000 {
            hits[sampler.sample(&mut rng)] += 1;
        }
        // Expected proportions ~ 8^.75 : 2^.75 : 1 = 4.76 : 1.68 : 1.
        assert!(hits[0] > hits[1] && hits[1] > hits[2], "{hits:?}");
        let ratio_ab = hits[0] as f64 / hits[1] as f64;
        assert!((2.0..4.0).contains(&ratio_ab), "a/b ratio {ratio_ab}");
    }

    #[test]
    fn all_words_are_reachable() {
        let v = vocab();
        let sampler = NegativeSampler::new(&v, 1_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..5_000 {
            seen[sampler.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn empty_vocab_panics() {
        let v = W2vVocab::build(&[], 1);
        NegativeSampler::new(&v, 16);
    }
}
