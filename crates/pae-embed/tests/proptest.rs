//! Property-based tests for similarity measures and phrase grouping.

use proptest::prelude::*;

use pae_embed::{cosine, group_phrases, multiplicative_similarity};

fn vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cosine is symmetric and bounded in [-1, 1].
    #[test]
    fn cosine_symmetric_and_bounded(a in vector(8), b in vector(8)) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab), "cos = {ab}");
    }

    /// Cosine of a vector with itself is 1 (for nonzero vectors).
    #[test]
    fn cosine_self_is_one(a in vector(8)) {
        let norm: f32 = a.iter().map(|x| x * x).sum();
        prop_assume!(norm > 1e-6);
        prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    /// Multiplicative set similarity is bounded in [0, 1] and invariant
    /// under duplicating core members (geometric mean).
    #[test]
    fn multiplicative_bounded_and_size_invariant(
        cand in vector(8),
        core in proptest::collection::vec(vector(8), 1..4),
    ) {
        let refs: Vec<&[f32]> = core.iter().map(Vec::as_slice).collect();
        let s = multiplicative_similarity(&cand, &refs);
        prop_assert!((0.0..=1.0 + 1e-5).contains(&s), "sim = {s}");

        let doubled: Vec<&[f32]> = refs.iter().chain(refs.iter()).copied().collect();
        let s2 = multiplicative_similarity(&cand, &doubled);
        prop_assert!((s - s2).abs() < 1e-4, "{s} vs doubled {s2}");
    }

    /// Phrase grouping preserves token count accounting: every output
    /// token is either an input token or an underscore-join of
    /// consecutive input tokens.
    #[test]
    fn phrase_grouping_is_consistent(
        sentence in proptest::collection::vec("[a-c]{1,2}", 0..10),
        phrase in proptest::collection::vec("[a-c]{1,2}", 2..4),
    ) {
        let grouped = group_phrases(
            std::slice::from_ref(&sentence),
            std::slice::from_ref(&phrase),
        );
        let flattened: Vec<String> = grouped[0]
            .iter()
            .flat_map(|t| t.split('_').map(str::to_owned))
            .collect();
        prop_assert_eq!(flattened, sentence);
    }
}
