//! Dictionary lattice tokenizer for unsegmented languages.

use crate::charclass::{classify, CharClass};
use crate::lexicon::Lexicon;
use crate::token::Token;
use crate::tokenize::Tokenizer;

/// Tokenizer for unsegmented languages (the paper's Japanese).
///
/// Segmentation rules, applied left to right:
///
/// 1. whitespace is skipped (it may still occur around markup);
/// 2. a run of digits becomes one `Num`-shaped token — but separators
///    are *not* absorbed, so `1.5` tokenizes to `1`, `.`, `5` exactly as
///    the paper's footnote 3 reports for its Japanese tokenizer;
/// 3. symbols and punctuation are single-character tokens;
/// 4. for alphabetic runs, the longest lexicon entry starting at the
///    current position wins (classic MeCab-style greedy longest match);
/// 5. if no entry matches, characters are consumed until either a
///    non-alphabetic character or a position where a lexicon entry
///    begins, and emitted as one unknown token.
#[derive(Debug, Clone)]
pub struct LatticeTokenizer {
    lexicon: Lexicon,
}

impl LatticeTokenizer {
    /// Creates a tokenizer over the given segmentation dictionary.
    pub fn new(lexicon: Lexicon) -> Self {
        LatticeTokenizer { lexicon }
    }

    /// The segmentation dictionary.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Longest lexicon match starting at `chars[i]`, as a char count.
    ///
    /// One forward walk of the lexicon automaton — no per-length
    /// probes. Matched entries are complete UTF-8 strings, so the
    /// match end always lands on a character boundary and the byte
    /// length converts to a whole number of chars.
    fn longest_match(&self, chars: &[(usize, char)], text: &str, i: usize) -> Option<usize> {
        let start = chars[i].0;
        let (match_bytes, _tag) = self.lexicon.longest_match_at(text, start)?;
        let end = start + match_bytes;
        let mut j = i + 1;
        while j < chars.len() && chars[j].0 < end {
            j += 1;
        }
        Some(j - i)
    }
}

impl Tokenizer for LatticeTokenizer {
    fn tokenize(&self, text: &str) -> Vec<Token> {
        let chars: Vec<(usize, char)> = text.char_indices().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let (start_b, c) = chars[i];
            match classify(c) {
                CharClass::Space => {
                    i += 1;
                }
                CharClass::Digit => {
                    let mut j = i + 1;
                    while j < chars.len() && classify(chars[j].1) == CharClass::Digit {
                        j += 1;
                    }
                    let end_b = end_byte(&chars, text, j);
                    out.push(Token::new(&text[start_b..end_b], start_b, end_b));
                    i = j;
                }
                CharClass::Punct | CharClass::Symbol => {
                    let end_b = end_byte(&chars, text, i + 1);
                    out.push(Token::new(&text[start_b..end_b], start_b, end_b));
                    i += 1;
                }
                CharClass::Alpha => {
                    if let Some(len) = self.longest_match(&chars, text, i) {
                        let end_b = end_byte(&chars, text, i + len);
                        out.push(Token::new(&text[start_b..end_b], start_b, end_b));
                        i += len;
                    } else {
                        // Unknown run: consume alpha chars until a known
                        // entry starts or the class changes.
                        let mut j = i + 1;
                        while j < chars.len()
                            && classify(chars[j].1) == CharClass::Alpha
                            && self.longest_match(&chars, text, j).is_none()
                        {
                            j += 1;
                        }
                        let end_b = end_byte(&chars, text, j);
                        out.push(Token::new(&text[start_b..end_b], start_b, end_b));
                        i = j;
                    }
                }
            }
        }
        out
    }
}

/// Byte offset of char index `j` (or the end of the text).
fn end_byte(chars: &[(usize, char)], text: &str, j: usize) -> usize {
    if j < chars.len() {
        chars[j].0
    } else {
        text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTag;

    fn lex() -> Lexicon {
        Lexicon::from_entries([
            ("aka", PosTag::Adj),    // "red"
            ("kaban", PosTag::Noun), // "bag"
            ("kg", PosTag::Unit),
            ("omosa", PosTag::Noun), // "weight"
            ("no", PosTag::Particle),
            ("akane", PosTag::Noun), // longer entry sharing prefix with aka
        ])
    }

    fn words(text: &str) -> Vec<String> {
        LatticeTokenizer::new(lex())
            .tokenize(text)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn longest_match_wins() {
        // "akane" must beat "aka".
        assert_eq!(words("akane"), ["akane"]);
        assert_eq!(words("akakaban"), ["aka", "kaban"]);
    }

    #[test]
    fn decimal_splits_like_japanese() {
        // Footnote 3 of the paper: 1.5 becomes three tokens.
        assert_eq!(words("1.5kg"), ["1", ".", "5", "kg"]);
    }

    #[test]
    fn digit_runs_stay_whole() {
        assert_eq!(words("4000kg"), ["4000", "kg"]);
    }

    #[test]
    fn unknown_runs_are_one_token_until_known_entry() {
        assert_eq!(words("zzzkaban"), ["zzz", "kaban"]);
        assert_eq!(words("zzz"), ["zzz"]);
    }

    #[test]
    fn symbols_split() {
        assert_eq!(words("omosa:2kg"), ["omosa", ":", "2", "kg"]);
        assert_eq!(words("1/4000"), ["1", "/", "4000"]);
    }

    #[test]
    fn whitespace_is_skipped() {
        assert_eq!(words("aka kaban"), ["aka", "kaban"]);
    }

    #[test]
    fn empty_input() {
        assert!(words("").is_empty());
    }

    #[test]
    fn empty_lexicon_groups_whole_alpha_run() {
        let t = LatticeTokenizer::new(Lexicon::new());
        let toks = t.tokenize("abcdef");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "abcdef");
    }

    #[test]
    fn offsets_are_exact() {
        let text = "omosa:1.5kgakakaban";
        for t in LatticeTokenizer::new(lex()).tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }
}
