//! Tokenizers: the language-dependent segmentation layer.

mod lattice;
mod whitespace;

pub use lattice::LatticeTokenizer;
pub use whitespace::WhitespaceTokenizer;

use crate::token::Token;

/// A tokenizer turns one sentence of raw text into surface tokens with
/// byte offsets.
pub trait Tokenizer: Send + Sync {
    /// Tokenizes a single sentence.
    fn tokenize(&self, text: &str) -> Vec<Token>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared invariant: every tokenizer must produce tokens whose
    /// offsets slice back to their surface form, in increasing order.
    pub(crate) fn check_offsets(text: &str, tokens: &[Token]) {
        let mut prev_end = 0;
        for t in tokens {
            assert!(t.start >= prev_end, "tokens out of order in {text:?}");
            assert!(t.end <= text.len());
            assert_eq!(&text[t.start..t.end], t.text, "offset mismatch in {text:?}");
            prev_end = t.end;
        }
    }

    #[test]
    fn offsets_hold_for_both_tokenizers() {
        use crate::lexicon::Lexicon;
        use crate::pos::PosTag;
        let text = "midnightblue 2.5kg *sale*";
        let ws = WhitespaceTokenizer::new();
        check_offsets(text, &ws.tokenize(text));

        let lex = Lexicon::from_entries([
            ("midnight", PosTag::Noun),
            ("blue", PosTag::Adj),
            ("kg", PosTag::Unit),
            ("sale", PosTag::Noun),
        ]);
        let lat = LatticeTokenizer::new(lex);
        let glued = "midnightblue2.5kg*sale*";
        check_offsets(glued, &lat.tokenize(glued));
    }
}
