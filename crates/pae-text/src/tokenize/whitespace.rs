//! Whitespace tokenizer for space-delimited languages.

use crate::charclass::{classify, CharClass};
use crate::token::Token;
use crate::tokenize::Tokenizer;

/// Tokenizer for space-delimited languages (the paper's German).
///
/// Splits on whitespace, then splits each chunk at character-class
/// boundaries so that punctuation and symbols become their own tokens.
/// Decimal numbers (`2.5`, `1,5`) are kept as a single `Num`-shaped
/// token — unlike the lattice tokenizer, mirroring the different
/// behaviour of real German vs Japanese tokenizers that the paper's
/// diversification module has to cope with.
#[derive(Debug, Default, Clone)]
pub struct WhitespaceTokenizer {
    _priv: (),
}

impl WhitespaceTokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tokenizer for WhitespaceTokenizer {
    fn tokenize(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let bytes_of = |s: &str| s.len();
        let mut offset = 0usize;
        for chunk in text.split_inclusive(char::is_whitespace) {
            let trimmed = chunk.trim_end_matches(char::is_whitespace);
            if !trimmed.is_empty() {
                split_chunk(trimmed, offset, &mut out);
            }
            offset += bytes_of(chunk);
        }
        out
    }
}

/// Splits one whitespace-free chunk at char-class boundaries.
///
/// A digit followed by `.`/`,` followed by another digit is kept inside
/// the same number token (decimal and thousands separators).
fn split_chunk(chunk: &str, base: usize, out: &mut Vec<Token>) {
    let chars: Vec<(usize, char)> = chunk.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (start_b, c) = chars[i];
        let class = classify(c);
        let mut j = i + 1;
        match class {
            CharClass::Digit => {
                // Consume the full numeric shape: digits with embedded
                // single separators between digits (2.5, 24,000).
                while j < chars.len() {
                    let cj = chars[j].1;
                    let cls = classify(cj);
                    if cls == CharClass::Digit {
                        j += 1;
                    } else if matches!(cj, '.' | ',')
                        && j + 1 < chars.len()
                        && classify(chars[j + 1].1) == CharClass::Digit
                    {
                        j += 2;
                    } else {
                        break;
                    }
                }
            }
            CharClass::Alpha => {
                while j < chars.len() && classify(chars[j].1) == CharClass::Alpha {
                    j += 1;
                }
            }
            // Symbols and punctuation are single-character tokens.
            CharClass::Punct | CharClass::Symbol => {}
            CharClass::Space => unreachable!("chunks contain no whitespace"),
        }
        let end_b = if j < chars.len() {
            chars[j].0
        } else {
            chunk.len()
        };
        out.push(Token::new(
            &chunk[start_b..end_b],
            base + start_b,
            base + end_b,
        ));
        i = j.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        WhitespaceTokenizer::new()
            .tokenize(text)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(words("red cotton bag"), ["red", "cotton", "bag"]);
    }

    #[test]
    fn decimal_numbers_stay_whole() {
        assert_eq!(words("weight 2.5 kg"), ["weight", "2.5", "kg"]);
        assert_eq!(words("2,5kg"), ["2,5", "kg"]);
    }

    #[test]
    fn thousands_separator_stays_whole() {
        assert_eq!(words("24,000 pixels"), ["24,000", "pixels"]);
    }

    #[test]
    fn trailing_punctuation_detached() {
        assert_eq!(words("blue."), ["blue", "."]);
        assert_eq!(words("sale!"), ["sale", "!"]);
    }

    #[test]
    fn symbols_are_single_tokens() {
        assert_eq!(words("*sale* 50%"), ["*", "sale", "*", "50", "%"]);
    }

    #[test]
    fn number_unit_compound_is_split() {
        assert_eq!(words("2.5kg"), ["2.5", "kg"]);
        assert_eq!(words("1/4000s"), ["1", "/", "4000", "s"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(words("").is_empty());
        assert!(words("   \t ").is_empty());
    }

    #[test]
    fn offsets_are_exact() {
        let text = " a  2.5kg! ";
        let toks = WhitespaceTokenizer::new().tokenize(text);
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
        let surface: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(surface, ["a", "2.5", "kg", "!"]);
    }
}
