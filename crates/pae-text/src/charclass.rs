//! Character classification shared by the tokenizers and taggers.

/// Coarse character classes.
///
/// The classes drive token segmentation: runs of `Digit` become number
/// tokens, `Symbol`/`Punct` characters are emitted as single-character
/// tokens, and `Alpha` runs are looked up in the lexicon (lattice
/// tokenizer) or kept whole (whitespace tokenizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharClass {
    /// ASCII or Unicode decimal digit.
    Digit,
    /// Alphabetic character (any script).
    Alpha,
    /// Whitespace.
    Space,
    /// Sentence-level punctuation (`.`, `,`, `!`, `?`, `;`, `:`).
    Punct,
    /// Everything else that is printable: `%`, `/`, `~`, `*`, `-`, …
    Symbol,
}

/// Classifies a single character.
pub fn classify(c: char) -> CharClass {
    if c.is_whitespace() {
        CharClass::Space
    } else if c.is_ascii_digit() || c.is_numeric() {
        CharClass::Digit
    } else if c.is_alphabetic() {
        CharClass::Alpha
    } else if matches!(c, '.' | ',' | '!' | '?' | ';' | ':' | '。' | '、') {
        CharClass::Punct
    } else {
        CharClass::Symbol
    }
}

/// Dominant class of a string: the class of its first character, or
/// `Symbol` for the empty string. Useful for unknown-word handling.
pub fn dominant(s: &str) -> CharClass {
    s.chars().next().map_or(CharClass::Symbol, classify)
}

/// True when every character of `s` is a digit.
pub fn all_digits(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| classify(c) == CharClass::Digit)
}

/// True when `s` is a single symbol or punctuation character.
pub fn is_symbolic(s: &str) -> bool {
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => matches!(classify(c), CharClass::Symbol | CharClass::Punct),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_basic_ascii() {
        assert_eq!(classify('3'), CharClass::Digit);
        assert_eq!(classify('a'), CharClass::Alpha);
        assert_eq!(classify(' '), CharClass::Space);
        assert_eq!(classify('.'), CharClass::Punct);
        assert_eq!(classify('%'), CharClass::Symbol);
        assert_eq!(classify('-'), CharClass::Symbol);
    }

    #[test]
    fn classifies_cjk_punctuation() {
        assert_eq!(classify('。'), CharClass::Punct);
        assert_eq!(classify('、'), CharClass::Punct);
    }

    #[test]
    fn dominant_of_mixed_string_is_first_char() {
        assert_eq!(dominant("3kg"), CharClass::Digit);
        assert_eq!(dominant("kg"), CharClass::Alpha);
        assert_eq!(dominant(""), CharClass::Symbol);
    }

    #[test]
    fn all_digits_detects_digit_runs() {
        assert!(all_digits("12345"));
        assert!(!all_digits("12a"));
        assert!(!all_digits(""));
        assert!(!all_digits("1.5"));
    }

    #[test]
    fn is_symbolic_only_for_single_symbols() {
        assert!(is_symbolic("*"));
        assert!(is_symbolic(";"));
        assert!(!is_symbolic("**"));
        assert!(!is_symbolic("a"));
        assert!(!is_symbolic(""));
    }
}
