//! Rule + dictionary PoS tagger.

use crate::charclass::{all_digits, classify, CharClass};
use crate::lexicon::Lexicon;
use crate::pos::PosTag;
use crate::tagger::PosTagger;
use crate::token::Token;

/// Deterministic tagger: lexicon lookup first, then character-class
/// rules for everything out of vocabulary.
///
/// Fallback rules, in order:
/// 1. digit runs (including `2.5` / `24,000` shapes) → [`PosTag::Num`];
/// 2. single punctuation characters → [`PosTag::Punct`];
/// 3. single symbol characters → [`PosTag::Sym`];
/// 4. capitalized alphabetic tokens → [`PosTag::PropNoun`];
/// 5. remaining alphabetic tokens → [`PosTag::Noun`];
/// 6. anything else → [`PosTag::Other`].
#[derive(Debug, Clone)]
pub struct LexiconPosTagger {
    lexicon: Lexicon,
}

impl LexiconPosTagger {
    /// Creates a tagger over `lexicon`.
    pub fn new(lexicon: Lexicon) -> Self {
        LexiconPosTagger { lexicon }
    }

    /// The backing lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Tags a single surface form.
    pub fn tag_word(&self, word: &str) -> PosTag {
        if let Some(t) = self.lexicon.tag_of(word) {
            return t;
        }
        fallback_tag(word)
    }
}

/// Character-class fallback used for out-of-vocabulary words.
pub fn fallback_tag(word: &str) -> PosTag {
    if all_digits(word) || numeric_shape(word) {
        return PosTag::Num;
    }
    let mut chars = word.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => match classify(c) {
            CharClass::Punct => return PosTag::Punct,
            CharClass::Symbol => return PosTag::Sym,
            _ => {}
        },
        (None, _) => return PosTag::Other,
        _ => {}
    }
    let first = word.chars().next().expect("nonempty");
    if first.is_alphabetic() {
        if first.is_uppercase() {
            PosTag::PropNoun
        } else {
            PosTag::Noun
        }
    } else {
        PosTag::Other
    }
}

/// True for digits with embedded `.`/`,` separators, e.g. `2.5`, `24,000`.
fn numeric_shape(word: &str) -> bool {
    let mut saw_digit = false;
    let mut prev_digit = false;
    for c in word.chars() {
        if classify(c) == CharClass::Digit {
            saw_digit = true;
            prev_digit = true;
        } else if matches!(c, '.' | ',') && prev_digit {
            prev_digit = false;
        } else {
            return false;
        }
    }
    saw_digit && prev_digit
}

impl PosTagger for LexiconPosTagger {
    fn tag(&self, tokens: &[Token]) -> Vec<PosTag> {
        tokens.iter().map(|t| self.tag_word(&t.text)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagger() -> LexiconPosTagger {
        LexiconPosTagger::new(Lexicon::from_entries([
            ("kg", PosTag::Unit),
            ("red", PosTag::Adj),
            ("the", PosTag::Particle),
        ]))
    }

    #[test]
    fn lexicon_entries_win() {
        let t = tagger();
        assert_eq!(t.tag_word("kg"), PosTag::Unit);
        assert_eq!(t.tag_word("red"), PosTag::Adj);
    }

    #[test]
    fn numbers_and_shapes() {
        let t = tagger();
        assert_eq!(t.tag_word("42"), PosTag::Num);
        assert_eq!(t.tag_word("2.5"), PosTag::Num);
        assert_eq!(t.tag_word("24,000"), PosTag::Num);
        // Trailing separator is not a number.
        assert_eq!(t.tag_word("24,"), PosTag::Other);
    }

    #[test]
    fn symbols_and_punct() {
        let t = tagger();
        assert_eq!(t.tag_word("*"), PosTag::Sym);
        assert_eq!(t.tag_word("."), PosTag::Punct);
        assert_eq!(t.tag_word("%"), PosTag::Sym);
    }

    #[test]
    fn oov_alpha_words() {
        let t = tagger();
        assert_eq!(t.tag_word("cotton"), PosTag::Noun);
        assert_eq!(t.tag_word("Nikon"), PosTag::PropNoun);
    }

    #[test]
    fn empty_is_other() {
        assert_eq!(tagger().tag_word(""), PosTag::Other);
    }
}
