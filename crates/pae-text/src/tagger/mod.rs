//! Part-of-speech taggers.

mod hmm;
mod lexicon;

pub use hmm::HmmPosTagger;
pub use lexicon::LexiconPosTagger;

use crate::pos::PosTag;
use crate::token::Token;

/// A PoS tagger assigns one tag per token.
pub trait PosTagger: Send + Sync {
    /// Tags `tokens`, returning exactly one tag per token.
    fn tag(&self, tokens: &[Token]) -> Vec<PosTag>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::tokenize::{Tokenizer, WhitespaceTokenizer};

    #[test]
    fn taggers_return_one_tag_per_token() {
        let toks = WhitespaceTokenizer::new().tokenize("red bag 2.5 kg .");
        let lex = Lexicon::from_entries([
            ("red", PosTag::Adj),
            ("bag", PosTag::Noun),
            ("kg", PosTag::Unit),
        ]);
        let lexicon_tagger = LexiconPosTagger::new(lex);
        assert_eq!(lexicon_tagger.tag(&toks).len(), toks.len());

        let hmm = HmmPosTagger::train(&[vec![
            ("red".into(), PosTag::Adj),
            ("bag".into(), PosTag::Noun),
        ]]);
        assert_eq!(hmm.tag(&toks).len(), toks.len());
    }
}
