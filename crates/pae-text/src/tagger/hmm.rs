//! Bigram hidden-Markov-model PoS tagger with Viterbi decoding.

#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use crate::pos::PosTag;
use crate::tagger::lexicon::fallback_tag;
use crate::tagger::PosTagger;
use crate::token::Token;

const N_TAGS: usize = PosTag::ALL.len();

/// A classic bigram HMM tagger: `P(tag | prev_tag)` transitions and
/// `P(word | tag)` emissions, both add-k smoothed, decoded with Viterbi.
///
/// Out-of-vocabulary words back off to the character-class heuristic of
/// [`fallback_tag`] via a pseudo-emission: the heuristic tag receives
/// most of the probability mass, everything else shares the rest. This
/// mirrors the unknown-word handling of practical taggers without
/// needing suffix tries.
#[derive(Debug, Clone)]
pub struct HmmPosTagger {
    /// `log P(tag_j | tag_i)` stored row-major `[i][j]`, with a virtual
    /// start state in row `N_TAGS`.
    log_trans: Vec<[f64; N_TAGS]>,
    /// `word -> log P(word | tag)` for every tag.
    log_emit: HashMap<String, [f64; N_TAGS]>,
    /// `log P(unseen | tag)` fallback mass per tag.
    log_emit_unk: [f64; N_TAGS],
    /// Weight the character-class heuristic gets for OOV words.
    oov_heuristic_weight: f64,
}

/// One training sentence: `(surface, gold_tag)` pairs.
pub type TrainSentence = Vec<(String, PosTag)>;

impl HmmPosTagger {
    /// Trains transition and emission tables from tagged sentences with
    /// add-k smoothing (`k = 0.1`).
    pub fn train(sentences: &[TrainSentence]) -> Self {
        const K: f64 = 0.1;
        let mut trans = vec![[K; N_TAGS]; N_TAGS + 1];
        let mut emit_counts: HashMap<String, [f64; N_TAGS]> = HashMap::new();
        let mut tag_totals = [0.0f64; N_TAGS];

        for sent in sentences {
            let mut prev = N_TAGS; // virtual start state
            for (word, tag) in sent {
                let t = tag.index();
                trans[prev][t] += 1.0;
                emit_counts.entry(word.clone()).or_insert([0.0; N_TAGS])[t] += 1.0;
                tag_totals[t] += 1.0;
                prev = t;
            }
        }

        // Normalize transitions to log probabilities.
        let mut log_trans = vec![[0.0f64; N_TAGS]; N_TAGS + 1];
        for (i, row) in trans.iter().enumerate() {
            let total: f64 = row.iter().sum();
            for j in 0..N_TAGS {
                log_trans[i][j] = (row[j] / total).ln();
            }
        }

        // Emissions: P(word|tag) = (count + K) / (total + K * (V + 1)).
        let vocab = emit_counts.len() as f64;
        let mut log_emit = HashMap::with_capacity(emit_counts.len());
        let mut log_emit_unk = [0.0f64; N_TAGS];
        for t in 0..N_TAGS {
            log_emit_unk[t] = (K / (tag_totals[t] + K * (vocab + 1.0))).ln();
        }
        for (word, counts) in emit_counts {
            let mut row = [0.0f64; N_TAGS];
            for t in 0..N_TAGS {
                row[t] = ((counts[t] + K) / (tag_totals[t] + K * (vocab + 1.0))).ln();
            }
            log_emit.insert(word, row);
        }

        HmmPosTagger {
            log_trans,
            log_emit,
            log_emit_unk,
            oov_heuristic_weight: 0.8,
        }
    }

    /// Number of distinct words with observed emissions.
    pub fn vocab_size(&self) -> usize {
        self.log_emit.len()
    }

    /// Emission log-scores for one word (known or OOV).
    fn emission(&self, word: &str) -> [f64; N_TAGS] {
        if let Some(row) = self.log_emit.get(word) {
            return *row;
        }
        // OOV: combine the smoothed unknown mass with the char-class
        // heuristic so number/symbol shapes are still tagged reliably.
        let heur = fallback_tag(word).index();
        let w = self.oov_heuristic_weight;
        let mut row = self.log_emit_unk;
        for (t, v) in row.iter_mut().enumerate() {
            let bias = if t == heur {
                w
            } else {
                (1.0 - w) / (N_TAGS - 1) as f64
            };
            *v += bias.ln();
        }
        row
    }

    /// Viterbi decode over surface forms.
    pub fn decode(&self, words: &[&str]) -> Vec<PosTag> {
        if words.is_empty() {
            return Vec::new();
        }
        let n = words.len();
        let mut delta = vec![[f64::NEG_INFINITY; N_TAGS]; n];
        let mut back = vec![[0usize; N_TAGS]; n];

        let e0 = self.emission(words[0]);
        for t in 0..N_TAGS {
            delta[0][t] = self.log_trans[N_TAGS][t] + e0[t];
        }
        for i in 1..n {
            let e = self.emission(words[i]);
            for t in 0..N_TAGS {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for p in 0..N_TAGS {
                    let s = delta[i - 1][p] + self.log_trans[p][t];
                    if s > best {
                        best = s;
                        arg = p;
                    }
                }
                delta[i][t] = best + e[t];
                back[i][t] = arg;
            }
        }

        let mut last = 0usize;
        let mut best = f64::NEG_INFINITY;
        for t in 0..N_TAGS {
            if delta[n - 1][t] > best {
                best = delta[n - 1][t];
                last = t;
            }
        }
        let mut tags = vec![PosTag::Other; n];
        let mut cur = last;
        for i in (0..n).rev() {
            tags[i] = PosTag::from_index(cur);
            cur = back[i][cur];
        }
        tags
    }
}

impl PosTagger for HmmPosTagger {
    fn tag(&self, tokens: &[Token]) -> Vec<PosTag> {
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        self.decode(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> Vec<TrainSentence> {
        // weight : 2 kg  /  red bag
        let mk = |pairs: &[(&str, PosTag)]| {
            pairs
                .iter()
                .map(|(w, t)| (w.to_string(), *t))
                .collect::<TrainSentence>()
        };
        vec![
            mk(&[
                ("weight", PosTag::Noun),
                (":", PosTag::Sym),
                ("2", PosTag::Num),
                ("kg", PosTag::Unit),
            ]),
            mk(&[("red", PosTag::Adj), ("bag", PosTag::Noun)]),
            mk(&[
                ("size", PosTag::Noun),
                (":", PosTag::Sym),
                ("30", PosTag::Num),
                ("cm", PosTag::Unit),
            ]),
            mk(&[("blue", PosTag::Adj), ("bag", PosTag::Noun)]),
        ]
    }

    #[test]
    fn recovers_training_tags() {
        let hmm = HmmPosTagger::train(&training_data());
        assert_eq!(
            hmm.decode(&["weight", ":", "2", "kg"]),
            [PosTag::Noun, PosTag::Sym, PosTag::Num, PosTag::Unit]
        );
        assert_eq!(hmm.decode(&["red", "bag"]), [PosTag::Adj, PosTag::Noun]);
    }

    #[test]
    fn generalizes_unit_after_number() {
        let hmm = HmmPosTagger::train(&training_data());
        // "cm" appears after a number in training; a *known* unit after a
        // new number context must still come out as Unit.
        let tags = hmm.decode(&["size", ":", "9", "cm"]);
        assert_eq!(tags[3], PosTag::Unit);
        assert_eq!(tags[2], PosTag::Num);
    }

    #[test]
    fn oov_numbers_use_heuristic() {
        let hmm = HmmPosTagger::train(&training_data());
        let tags = hmm.decode(&["77777"]);
        assert_eq!(tags, [PosTag::Num]);
    }

    #[test]
    fn oov_symbol_uses_heuristic() {
        let hmm = HmmPosTagger::train(&training_data());
        assert_eq!(hmm.decode(&["%"]), [PosTag::Sym]);
    }

    #[test]
    fn empty_input_is_empty() {
        let hmm = HmmPosTagger::train(&training_data());
        assert!(hmm.decode(&[]).is_empty());
    }

    #[test]
    fn vocab_size_counts_distinct_words() {
        let hmm = HmmPosTagger::train(&training_data());
        // weight : 2 kg red bag size 30 cm blue  -> 10 distinct
        assert_eq!(hmm.vocab_size(), 10);
    }
}
