#![warn(missing_docs)]

//! Text-processing substrate for the product attribute extraction pipeline.
//!
//! The paper's architecture is language independent *except* for the
//! tokenizer and the part-of-speech tagger. This crate provides exactly
//! that language-dependent boundary:
//!
//! * [`Vocab`] — a string interner shared by the statistical components.
//! * [`CharClass`] — character classification used by both tokenizers.
//! * Tokenizers:
//!   * [`tokenize::WhitespaceTokenizer`] for space-delimited languages
//!     (the paper's German),
//!   * [`tokenize::LatticeTokenizer`] for unsegmented languages (the
//!     paper's Japanese): dictionary longest-match with digit/symbol
//!     splitting, so that `1.5` becomes three tokens (`1`, `.`, `5`) as
//!     the paper's footnote 3 describes.
//! * Part-of-speech taggers behind the [`PosTagger`] trait:
//!   * [`tagger::LexiconPosTagger`] — dictionary + character-class rules,
//!   * [`tagger::HmmPosTagger`] — a bigram hidden Markov model with
//!     add-k smoothing and Viterbi decoding.
//! * [`sentence::SentenceSplitter`] — delimiter-based segmentation.
//!
//! Everything is deterministic and allocation-conscious; tokens carry
//! byte offsets into the original sentence so extraction spans can be
//! mapped back to source text.

pub mod charclass;
pub mod lexicon;
pub mod pos;
pub mod sentence;
pub mod tagger;
pub mod token;
pub mod tokenize;
pub mod vocab;

pub use charclass::CharClass;
pub use lexicon::Lexicon;
pub use pos::PosTag;
pub use sentence::SentenceSplitter;
pub use tagger::{HmmPosTagger, LexiconPosTagger, PosTagger};
pub use token::{TaggedToken, Token};
pub use tokenize::{LatticeTokenizer, Tokenizer, WhitespaceTokenizer};
pub use vocab::Vocab;

/// A tokenized and PoS-tagged sentence, the unit of work for the taggers
/// and the bootstrap loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Tokens with their part-of-speech tags, in surface order.
    pub tokens: Vec<TaggedToken>,
}

impl Sentence {
    /// Builds a sentence by running `tokenizer` and then `tagger` over `text`.
    pub fn analyze(text: &str, tokenizer: &dyn Tokenizer, tagger: &dyn PosTagger) -> Self {
        let tokens = tokenizer.tokenize(text);
        let tags = tagger.tag(&tokens);
        Sentence {
            tokens: tokens
                .into_iter()
                .zip(tags)
                .map(|(token, pos)| TaggedToken { token, pos })
                .collect(),
        }
    }

    /// Surface forms of all tokens.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().map(|t| t.token.text.as_str())
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the sentence holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}
