//! Sentence segmentation.

/// Splits raw block text into sentences on configurable delimiters.
///
/// Delimiter characters are kept attached to the preceding sentence
/// (they matter as CRF context features). Empty sentences are dropped.
#[derive(Debug, Clone)]
pub struct SentenceSplitter {
    delimiters: Vec<char>,
}

impl Default for SentenceSplitter {
    fn default() -> Self {
        SentenceSplitter {
            delimiters: vec!['.', '!', '?', '\n', '。'],
        }
    }
}

impl SentenceSplitter {
    /// Splitter with the default delimiter set (`.`, `!`, `?`, newline, `。`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Splitter with a custom delimiter set.
    pub fn with_delimiters(delimiters: Vec<char>) -> Self {
        SentenceSplitter { delimiters }
    }

    /// Splits `text` into trimmed, non-empty sentences.
    ///
    /// A `.` between two digits is treated as a decimal point, not a
    /// sentence boundary.
    pub fn split(&self, text: &str) -> Vec<String> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        let mut cur = String::new();
        for (i, &c) in chars.iter().enumerate() {
            cur.push(c);
            if self.delimiters.contains(&c) {
                let decimal_point = c == '.'
                    && i > 0
                    && i + 1 < chars.len()
                    && chars[i - 1].is_ascii_digit()
                    && chars[i + 1].is_ascii_digit();
                if !decimal_point {
                    push_trimmed(&mut out, &mut cur);
                }
            }
        }
        push_trimmed(&mut out, &mut cur);
        out
    }
}

fn push_trimmed(out: &mut Vec<String>, cur: &mut String) {
    let trimmed = cur.trim();
    if !trimmed.is_empty() {
        out.push(trimmed.to_owned());
    }
    cur.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_periods() {
        let s = SentenceSplitter::new();
        assert_eq!(
            s.split("Red bag. Blue bag! Done"),
            ["Red bag.", "Blue bag!", "Done"]
        );
    }

    #[test]
    fn decimal_points_do_not_split() {
        let s = SentenceSplitter::new();
        assert_eq!(
            s.split("Weight is 2.5kg. Light"),
            ["Weight is 2.5kg.", "Light"]
        );
    }

    #[test]
    fn newlines_split() {
        let s = SentenceSplitter::new();
        assert_eq!(s.split("a\nb\n\nc"), ["a", "b", "c"]);
    }

    #[test]
    fn cjk_period_splits() {
        let s = SentenceSplitter::new();
        assert_eq!(s.split("akakaban。aokaban"), ["akakaban。", "aokaban"]);
    }

    #[test]
    fn empty_input() {
        assert!(SentenceSplitter::new().split("").is_empty());
        assert!(SentenceSplitter::new().split("  \n ").is_empty());
    }

    #[test]
    fn custom_delimiters() {
        let s = SentenceSplitter::with_delimiters(vec![';']);
        assert_eq!(s.split("a;b.c"), ["a;", "b.c"]);
    }
}
