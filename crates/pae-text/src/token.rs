//! Token types produced by the tokenizers.

use crate::pos::PosTag;

/// A surface token with byte offsets into the sentence it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Surface form.
    pub text: String,
    /// Byte offset of the first byte in the source sentence.
    pub start: usize,
    /// Byte offset one past the last byte in the source sentence.
    pub end: usize,
}

impl Token {
    /// Creates a token covering `start..end` with the given surface form.
    pub fn new(text: impl Into<String>, start: usize, end: usize) -> Self {
        Token {
            text: text.into(),
            start,
            end,
        }
    }

    /// Byte length of the token.
    pub fn byte_len(&self) -> usize {
        self.end - self.start
    }
}

/// A token paired with its part-of-speech tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaggedToken {
    /// The underlying surface token.
    pub token: Token,
    /// Part-of-speech tag assigned by the tagger.
    pub pos: PosTag,
}

impl TaggedToken {
    /// Surface form shortcut.
    pub fn text(&self) -> &str {
        &self.token.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_len() {
        let t = Token::new("abc", 4, 7);
        assert_eq!(t.byte_len(), 3);
        assert_eq!(t.text, "abc");
    }

    #[test]
    fn tagged_token_text() {
        let t = TaggedToken {
            token: Token::new("kg", 0, 2),
            pos: PosTag::Unit,
        };
        assert_eq!(t.text(), "kg");
    }
}
