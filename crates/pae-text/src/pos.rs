//! Part-of-speech tag set.
//!
//! The tag set is intentionally coarse: the pipeline only uses PoS tags
//! as CRF features and as the alphabet for value-shape sequences in the
//! diversification module (e.g. `Num Sym Num Unit` for `1.5kg`), so a
//! compact universal-style inventory is sufficient and keeps the system
//! language independent.

use std::fmt;

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (brands, model names).
    PropNoun,
    /// Verb.
    Verb,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Numeral (a digit run; decimals are split by the lattice tokenizer).
    Num,
    /// Measurement unit (`kg`, `cm`, `秒`-analogue, …).
    Unit,
    /// Grammatical particle / function word.
    Particle,
    /// Punctuation.
    Punct,
    /// Other symbols (`%`, `/`, `~`, `*`, …).
    Sym,
    /// Unknown / unclassified.
    Other,
}

impl PosTag {
    /// All tags, in a stable order (used by the HMM tagger's dense tables).
    pub const ALL: [PosTag; 11] = [
        PosTag::Noun,
        PosTag::PropNoun,
        PosTag::Verb,
        PosTag::Adj,
        PosTag::Adv,
        PosTag::Num,
        PosTag::Unit,
        PosTag::Particle,
        PosTag::Punct,
        PosTag::Sym,
        PosTag::Other,
    ];

    /// Dense index of the tag inside [`PosTag::ALL`].
    pub fn index(self) -> usize {
        match self {
            PosTag::Noun => 0,
            PosTag::PropNoun => 1,
            PosTag::Verb => 2,
            PosTag::Adj => 3,
            PosTag::Adv => 4,
            PosTag::Num => 5,
            PosTag::Unit => 6,
            PosTag::Particle => 7,
            PosTag::Punct => 8,
            PosTag::Sym => 9,
            PosTag::Other => 10,
        }
    }

    /// Inverse of [`PosTag::index`]; panics on out-of-range input.
    pub fn from_index(i: usize) -> PosTag {
        PosTag::ALL[i]
    }

    /// Short mnemonic used in PoS-sequence keys (`Num-Sym-Num-Unit`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            PosTag::Noun => "NN",
            PosTag::PropNoun => "NNP",
            PosTag::Verb => "VB",
            PosTag::Adj => "JJ",
            PosTag::Adv => "RB",
            PosTag::Num => "CD",
            PosTag::Unit => "UNIT",
            PosTag::Particle => "PRT",
            PosTag::Punct => "PUNCT",
            PosTag::Sym => "SYM",
            PosTag::Other => "X",
        }
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Renders a PoS sequence as a stable string key, e.g. `CD-SYM-CD-UNIT`.
pub fn sequence_key(tags: &[PosTag]) -> String {
    let mut out = String::with_capacity(tags.len() * 4);
    for (i, t) in tags.iter().enumerate() {
        if i > 0 {
            out.push('-');
        }
        out.push_str(t.mnemonic());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, &t) in PosTag::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(PosTag::from_index(i), t);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in PosTag::ALL {
            assert!(seen.insert(t.mnemonic()), "duplicate mnemonic {t}");
        }
    }

    #[test]
    fn sequence_key_format() {
        let key = sequence_key(&[PosTag::Num, PosTag::Sym, PosTag::Num, PosTag::Unit]);
        assert_eq!(key, "CD-SYM-CD-UNIT");
        assert_eq!(sequence_key(&[]), "");
    }
}
