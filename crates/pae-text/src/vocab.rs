//! String interner mapping surface forms to dense `u32` ids.
//!
//! The CRF feature extractor, the BiLSTM embeddings, and word2vec all
//! operate on dense integer ids; a shared interner keeps the hot paths
//! free of string hashing and cloning.

use std::collections::HashMap;

/// Dense id assigned to an interned string.
pub type WordId = u32;

/// A grow-only string interner.
///
/// Ids are assigned in first-seen order starting from zero, so a `Vocab`
/// built from the same input sequence is always identical — important
/// for the deterministic experiment harness.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    map: HashMap<String, WordId>,
    words: Vec<String>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.map.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.map.insert(word.to_owned(), id);
        self.words.push(word.to_owned());
        id
    }

    /// Looks up `word` without interning it.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.map.get(word).copied()
    }

    /// Returns the surface form for `id`, if assigned.
    pub fn word(&self, id: WordId) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as WordId, w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("red");
        let b = v.intern("blue");
        assert_eq!(v.intern("red"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocab::new();
        let id = v.intern("cotton");
        assert_eq!(v.get("cotton"), Some(id));
        assert_eq!(v.word(id), Some("cotton"));
        assert_eq!(v.get("linen"), None);
        assert_eq!(v.word(99), None);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let mut v = Vocab::new();
        for (i, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(v.intern(w), i as WordId);
        }
        let collected: Vec<_> = v.iter().map(|(_, w)| w.to_owned()).collect();
        assert_eq!(collected, ["a", "b", "c"]);
    }
}
