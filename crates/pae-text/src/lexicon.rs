//! Word lexicon: surface form → part-of-speech, used by the lattice
//! tokenizer (segmentation dictionary) and the lexicon PoS tagger.

use std::collections::HashMap;
use std::sync::OnceLock;

use pae_fst::Fst;

use crate::pos::PosTag;

/// A dictionary of known surface forms with their preferred PoS tag.
///
/// For unsegmented languages the lexicon doubles as the segmentation
/// dictionary: the [`crate::tokenize::LatticeTokenizer`] matches the
/// longest lexicon entry at each position via
/// [`Lexicon::longest_match_at`] — a single double-array trie descent,
/// not a per-prefix-length hash probe.
///
/// Two representations share one API:
///
/// * **Building** — a `HashMap` that absorbs [`Lexicon::insert`] calls
///   (the synthesizer's word factory inserts thousands of words one at
///   a time), plus a lazily compiled [`Fst`] used for matching. Any
///   insert invalidates the compiled automaton; it is rebuilt on the
///   next match. Call [`Lexicon::compiled`] once before cloning into
///   tokenizers so the clones share the automaton instead of each
///   recompiling it.
/// * **Frozen** — only the automaton, typically borrowing a loaded
///   bundle's bytes ([`Lexicon::from_fst`]): zero entries are
///   materialized at load time.
///
/// # Invariant
///
/// `max_chars()` is always the character length of the longest entry
/// *currently in* the lexicon — it is derived from the live entry set
/// (or the frozen automaton's header), never accumulated across
/// inserts, so replacing an entry or re-inserting duplicates can not
/// leave a stale bound.
#[derive(Debug, Clone)]
pub struct Lexicon {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Building {
        entries: HashMap<String, PosTag>,
        /// Compiled on first match after any insert; cleared by inserts.
        compiled: OnceLock<Fst>,
    },
    Frozen { fst: Fst },
}

/// Decodes a stored automaton value back into a tag; `None` for values
/// outside the tag inventory (possible only with a corrupt arena).
fn tag_of_value(v: u32) -> Option<PosTag> {
    PosTag::ALL.get(v as usize).copied()
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Lexicon {
            repr: Repr::Building { entries: HashMap::new(), compiled: OnceLock::new() },
        }
    }

    /// Builds a lexicon from `(word, tag)` pairs. Later duplicates win.
    pub fn from_entries<I, S>(entries: I) -> Self
    where
        I: IntoIterator<Item = (S, PosTag)>,
        S: Into<String>,
    {
        let mut lex = Lexicon::new();
        for (w, t) in entries {
            lex.insert(w, t);
        }
        lex
    }

    /// Wraps a compiled automaton (word → tag index, meta = max chars)
    /// as a frozen lexicon without materializing any entries.
    pub fn from_fst(fst: Fst) -> Self {
        Lexicon { repr: Repr::Frozen { fst } }
    }

    /// Inserts or replaces an entry.
    ///
    /// A frozen lexicon thaws back into building form first (cold
    /// path); a building lexicon just drops its compiled automaton.
    pub fn insert(&mut self, word: impl Into<String>, tag: PosTag) {
        let word = word.into();
        match &mut self.repr {
            Repr::Building { entries, compiled } => {
                entries.insert(word, tag);
                *compiled = OnceLock::new();
            }
            Repr::Frozen { fst } => {
                let mut entries: HashMap<String, PosTag> = fst
                    .iter()
                    .filter_map(|(k, v)| {
                        Some((String::from_utf8(k).ok()?, tag_of_value(v)?))
                    })
                    .collect();
                entries.insert(word, tag);
                self.repr = Repr::Building { entries, compiled: OnceLock::new() };
            }
        }
    }

    /// Looks up the tag for `word`.
    pub fn tag_of(&self, word: &str) -> Option<PosTag> {
        match &self.repr {
            Repr::Building { entries, .. } => entries.get(word).copied(),
            Repr::Frozen { fst } => fst.get(word.as_bytes()).and_then(tag_of_value),
        }
    }

    /// True when `word` is a known entry.
    pub fn contains(&self, word: &str) -> bool {
        self.tag_of(word).is_some()
    }

    /// Longest entry matching a prefix of `text[byte_pos..]`, found in
    /// one automaton walk: returns `(match_len_bytes, tag)`.
    ///
    /// Matched entries are complete UTF-8 strings, so `byte_pos +
    /// match_len_bytes` always lands on a character boundary of `text`
    /// when `byte_pos` does.
    pub fn longest_match_at(&self, text: &str, byte_pos: usize) -> Option<(usize, PosTag)> {
        let (len, v) = self.compiled().longest_match_at(text.as_bytes(), byte_pos)?;
        Some((len, tag_of_value(v)?))
    }

    /// Longest entry length in characters (0 for an empty lexicon).
    ///
    /// Derived from the current entry set / automaton header, so it is
    /// exact even after replacements (see the type-level invariant).
    pub fn max_chars(&self) -> usize {
        match &self.repr {
            Repr::Building { entries, .. } => {
                entries.keys().map(|w| w.chars().count()).max().unwrap_or(0)
            }
            Repr::Frozen { fst } => fst.meta() as usize,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Building { entries, .. } => entries.len(),
            Repr::Frozen { fst } => fst.n_keys(),
        }
    }

    /// True when the lexicon has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(word, tag)` entries.
    ///
    /// Building lexicons yield in unspecified order; frozen ones in
    /// sorted byte order. (Owned items: a frozen lexicon reconstructs
    /// words from the automaton.)
    pub fn iter(&self) -> Box<dyn Iterator<Item = (String, PosTag)> + '_> {
        match &self.repr {
            Repr::Building { entries, .. } => {
                Box::new(entries.iter().map(|(w, &t)| (w.clone(), t)))
            }
            Repr::Frozen { fst } => Box::new(fst.iter().filter_map(|(k, v)| {
                Some((String::from_utf8(k).ok()?, tag_of_value(v)?))
            })),
        }
    }

    /// Merges `other` into `self`; entries of `other` win on conflict.
    pub fn merge(&mut self, other: &Lexicon) {
        for (w, t) in other.iter() {
            self.insert(w, t);
        }
    }

    /// The compiled matching automaton: word → tag index, header meta
    /// = max entry length in characters.
    ///
    /// Frozen lexicons return their arena as-is. Building lexicons
    /// compile on first call after an insert and cache the result;
    /// clones made *after* this call share the compiled automaton.
    pub fn compiled(&self) -> &Fst {
        match &self.repr {
            Repr::Frozen { fst } => fst,
            Repr::Building { entries, compiled } => compiled.get_or_init(|| {
                let mut pairs: Vec<(&str, u32)> = entries
                    .iter()
                    .map(|(w, &t)| (w.as_str(), t.index() as u32))
                    .collect();
                pairs.sort_unstable_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
                let max_chars =
                    entries.keys().map(|w| w.chars().count()).max().unwrap_or(0) as u64;
                let pairs: Vec<(&[u8], u32)> =
                    pairs.into_iter().map(|(w, v)| (w.as_bytes(), v)).collect();
                Fst::build(&pairs, max_chars).expect("sorted unique entries always build")
            }),
        }
    }

    /// Entries as a sorted vector — the canonical form used for
    /// equality and bundle encoding.
    fn sorted_entries(&self) -> Vec<(String, PosTag)> {
        let mut v: Vec<(String, PosTag)> = self.iter().collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl PartialEq for Lexicon {
    /// Semantic equality over the entry set, regardless of
    /// representation: a frozen lexicon equals the building lexicon it
    /// was compiled from.
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (
                Repr::Building { entries: a, .. },
                Repr::Building { entries: b, .. },
            ) => a == b,
            (Repr::Frozen { fst: a }, Repr::Frozen { fst: b }) if a == b => true,
            _ => self.sorted_entries() == other.sorted_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut lex = Lexicon::new();
        lex.insert("kg", PosTag::Unit);
        lex.insert("red", PosTag::Adj);
        assert_eq!(lex.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(lex.tag_of("blue"), None);
        assert!(lex.contains("red"));
        assert_eq!(lex.len(), 2);
    }

    #[test]
    fn max_chars_tracks_longest_entry() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.max_chars(), 0);
        lex.insert("ab", PosTag::Noun);
        lex.insert("abcde", PosTag::Noun);
        lex.insert("x", PosTag::Noun);
        assert_eq!(lex.max_chars(), 5);
    }

    /// The invariant: `max_chars` is the max over the *current* entry
    /// set — replacement and duplicate inserts cannot leave it stale.
    #[test]
    fn max_chars_is_exact_after_replacement_and_duplicates() {
        let mut lex = Lexicon::new();
        lex.insert("abcde", PosTag::Noun);
        lex.insert("abcde", PosTag::Unit); // replace tag, same word
        lex.insert("ab", PosTag::Noun);
        assert_eq!(lex.max_chars(), 5);
        assert_eq!(lex.len(), 2);
        assert_eq!(lex.tag_of("abcde"), Some(PosTag::Unit));
        // Frozen form carries the same bound in its header.
        let frozen = Lexicon::from_fst(lex.compiled().clone());
        assert_eq!(frozen.max_chars(), 5);
    }

    /// `max_chars` counts characters, not bytes, in both reprs.
    #[test]
    fn max_chars_is_in_characters_not_bytes() {
        let lex = Lexicon::from_entries([("ようこそ", PosTag::Other)]);
        assert_eq!(lex.max_chars(), 4);
        let frozen = Lexicon::from_fst(lex.compiled().clone());
        assert_eq!(frozen.max_chars(), 4);
    }

    #[test]
    fn later_duplicates_win() {
        let lex = Lexicon::from_entries([("kg", PosTag::Noun), ("kg", PosTag::Unit)]);
        assert_eq!(lex.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(lex.len(), 1);
    }

    /// The compiled automaton must agree with the documented
    /// "later duplicates win" semantics.
    #[test]
    fn later_duplicates_win_through_the_fst_path() {
        let lex = Lexicon::from_entries([("kg", PosTag::Noun), ("kg", PosTag::Unit)]);
        assert_eq!(lex.longest_match_at("kg", 0), Some((2, PosTag::Unit)));
        let frozen = Lexicon::from_fst(lex.compiled().clone());
        assert_eq!(frozen.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(frozen.len(), 1);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = Lexicon::from_entries([("kg", PosTag::Noun)]);
        let b = Lexicon::from_entries([("kg", PosTag::Unit), ("cm", PosTag::Unit)]);
        a.merge(&b);
        assert_eq!(a.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn longest_match_at_walks_once() {
        let lex = Lexicon::from_entries([
            ("aka", PosTag::Adj),
            ("akane", PosTag::Noun),
            ("kg", PosTag::Unit),
        ]);
        assert_eq!(lex.longest_match_at("akane", 0), Some((5, PosTag::Noun)));
        assert_eq!(lex.longest_match_at("akakg", 0), Some((3, PosTag::Adj)));
        assert_eq!(lex.longest_match_at("akakg", 3), Some((2, PosTag::Unit)));
        assert_eq!(lex.longest_match_at("zzz", 0), None);
        assert_eq!(lex.longest_match_at("akane", 99), None);
    }

    #[test]
    fn frozen_round_trip_is_equal_and_equivalent() {
        let building = Lexicon::from_entries([
            ("aka", PosTag::Adj),
            ("kaban", PosTag::Noun),
            ("kg", PosTag::Unit),
        ]);
        let frozen = Lexicon::from_fst(building.compiled().clone());
        assert_eq!(building, frozen);
        assert_eq!(frozen.len(), 3);
        assert_eq!(frozen.max_chars(), 5);
        assert_eq!(frozen.tag_of("kaban"), Some(PosTag::Noun));
        assert_eq!(frozen.tag_of("kab"), None);
        assert_eq!(
            frozen.longest_match_at("akakaban", 3),
            Some((5, PosTag::Noun))
        );
        // Thaw path: inserting into a frozen lexicon keeps all entries.
        let mut thawed = frozen.clone();
        thawed.insert("cm", PosTag::Unit);
        assert_eq!(thawed.len(), 4);
        assert_eq!(thawed.tag_of("aka"), Some(PosTag::Adj));
        assert_eq!(thawed.tag_of("cm"), Some(PosTag::Unit));
    }

    #[test]
    fn insert_invalidates_compiled_automaton() {
        let mut lex = Lexicon::from_entries([("aka", PosTag::Adj)]);
        assert_eq!(lex.longest_match_at("akane", 0), Some((3, PosTag::Adj)));
        lex.insert("akane", PosTag::Noun);
        assert_eq!(lex.longest_match_at("akane", 0), Some((5, PosTag::Noun)));
    }

    #[test]
    fn multibyte_entries_match_on_byte_offsets() {
        let lex = Lexicon::from_entries([("重さ", PosTag::Noun), ("重", PosTag::Other)]);
        let text = "重さは";
        assert_eq!(lex.longest_match_at(text, 0), Some(("重さ".len(), PosTag::Noun)));
    }
}
