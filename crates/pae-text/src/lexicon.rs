//! Word lexicon: surface form → part-of-speech, used by the lattice
//! tokenizer (segmentation dictionary) and the lexicon PoS tagger.

use std::collections::HashMap;

use crate::pos::PosTag;

/// A dictionary of known surface forms with their preferred PoS tag.
///
/// For unsegmented languages the lexicon doubles as the segmentation
/// dictionary: the [`crate::tokenize::LatticeTokenizer`] matches the
/// longest lexicon entry at each position.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Lexicon {
    entries: HashMap<String, PosTag>,
    /// Longest entry length in *characters* — bounds the lattice search.
    max_chars: usize,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a lexicon from `(word, tag)` pairs. Later duplicates win.
    pub fn from_entries<I, S>(entries: I) -> Self
    where
        I: IntoIterator<Item = (S, PosTag)>,
        S: Into<String>,
    {
        let mut lex = Lexicon::new();
        for (w, t) in entries {
            lex.insert(w, t);
        }
        lex
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, word: impl Into<String>, tag: PosTag) {
        let word = word.into();
        self.max_chars = self.max_chars.max(word.chars().count());
        self.entries.insert(word, tag);
    }

    /// Looks up the tag for `word`.
    pub fn tag_of(&self, word: &str) -> Option<PosTag> {
        self.entries.get(word).copied()
    }

    /// True when `word` is a known entry.
    pub fn contains(&self, word: &str) -> bool {
        self.entries.contains_key(word)
    }

    /// Longest entry length in characters (0 for an empty lexicon).
    pub fn max_chars(&self) -> usize {
        self.max_chars
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the lexicon has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(word, tag)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, PosTag)> {
        self.entries.iter().map(|(w, &t)| (w.as_str(), t))
    }

    /// Merges `other` into `self`; entries of `other` win on conflict.
    pub fn merge(&mut self, other: &Lexicon) {
        for (w, t) in other.iter() {
            self.insert(w, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut lex = Lexicon::new();
        lex.insert("kg", PosTag::Unit);
        lex.insert("red", PosTag::Adj);
        assert_eq!(lex.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(lex.tag_of("blue"), None);
        assert!(lex.contains("red"));
        assert_eq!(lex.len(), 2);
    }

    #[test]
    fn max_chars_tracks_longest_entry() {
        let mut lex = Lexicon::new();
        assert_eq!(lex.max_chars(), 0);
        lex.insert("ab", PosTag::Noun);
        lex.insert("abcde", PosTag::Noun);
        lex.insert("x", PosTag::Noun);
        assert_eq!(lex.max_chars(), 5);
    }

    #[test]
    fn later_duplicates_win() {
        let lex = Lexicon::from_entries([("kg", PosTag::Noun), ("kg", PosTag::Unit)]);
        assert_eq!(lex.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(lex.len(), 1);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = Lexicon::from_entries([("kg", PosTag::Noun)]);
        let b = Lexicon::from_entries([("kg", PosTag::Unit), ("cm", PosTag::Unit)]);
        a.merge(&b);
        assert_eq!(a.tag_of("kg"), Some(PosTag::Unit));
        assert_eq!(a.len(), 2);
    }
}
