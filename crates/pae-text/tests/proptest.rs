//! Property-based tests for the tokenizers and taggers.

use proptest::prelude::*;

use pae_text::{
    HmmPosTagger, LatticeTokenizer, Lexicon, LexiconPosTagger, PosTag, PosTagger, SentenceSplitter,
    Tokenizer, WhitespaceTokenizer,
};

fn lexicon_strategy() -> impl Strategy<Value = Lexicon> {
    proptest::collection::vec("[a-z]{2,6}", 1..8)
        .prop_map(|words| Lexicon::from_entries(words.into_iter().map(|w| (w, PosTag::Noun))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lattice tokenization is total, lossless (modulo whitespace), and
    /// offset-correct for any dictionary and any input.
    #[test]
    fn lattice_total_and_offset_correct(
        lex in lexicon_strategy(),
        text in "[a-z0-9.,% ]{0,48}",
    ) {
        let tok = LatticeTokenizer::new(lex);
        let tokens = tok.tokenize(&text);
        let mut prev = 0;
        for t in &tokens {
            prop_assert!(t.start >= prev);
            prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
            prev = t.end;
        }
        let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
        let expected: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rebuilt, expected);
    }

    /// Both taggers return exactly one tag per token on any input.
    #[test]
    fn taggers_are_total(text in "\\PC{0,48}") {
        let tokens = WhitespaceTokenizer::new().tokenize(&text);
        let lexicon_tagger = LexiconPosTagger::new(Lexicon::new());
        prop_assert_eq!(lexicon_tagger.tag(&tokens).len(), tokens.len());
        let hmm = HmmPosTagger::train(&[vec![
            ("a".to_owned(), PosTag::Noun),
            ("1".to_owned(), PosTag::Num),
        ]]);
        prop_assert_eq!(hmm.tag(&tokens).len(), tokens.len());
    }

    /// Sentence splitting never loses non-whitespace characters.
    #[test]
    fn sentence_split_preserves_content(text in "[a-z0-9.!? ]{0,60}") {
        let sentences = SentenceSplitter::new().split(&text);
        let joined: String = sentences.concat().chars().filter(|c| !c.is_whitespace()).collect();
        let original: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(joined, original);
    }

    /// Splitting is stable: re-splitting any produced sentence yields
    /// that sentence back (sentences contain no internal boundaries).
    #[test]
    fn sentence_split_is_stable(text in "[a-z .]{0,40}") {
        let splitter = SentenceSplitter::new();
        for s in splitter.split(&text) {
            let again = splitter.split(&s);
            prop_assert_eq!(again, vec![s]);
        }
    }

    /// The compiled-automaton lookup path agrees exactly with a plain
    /// HashMap reference, for both exact lookups and longest-match at
    /// every byte position of a random text — building and frozen.
    #[test]
    fn fst_path_equals_hashmap_reference(
        words in proptest::collection::vec("[a-c]{1,5}", 0..10),
        text in "[a-d ]{0,32}",
        probe in "[a-d]{0,6}",
    ) {
        let entries: Vec<(String, PosTag)> = words
            .into_iter()
            .enumerate()
            .map(|(i, w)| (w, PosTag::ALL[i % PosTag::ALL.len()]))
            .collect();
        let reference: std::collections::HashMap<String, PosTag> =
            entries.iter().cloned().collect();
        let building = Lexicon::from_entries(entries);
        let frozen = Lexicon::from_fst(building.compiled().clone());

        for lex in [&building, &frozen] {
            prop_assert_eq!(lex.tag_of(&probe), reference.get(&probe).copied());
            for (w, t) in &reference {
                prop_assert_eq!(lex.tag_of(w), Some(*t));
            }
            for pos in 0..=text.len() {
                let want = reference
                    .iter()
                    .filter(|(w, _)| text.as_bytes()[pos..].starts_with(w.as_bytes()))
                    .max_by_key(|(w, _)| w.len())
                    .map(|(w, t)| (w.len(), *t));
                prop_assert_eq!(lex.longest_match_at(&text, pos), want);
            }
        }
        prop_assert_eq!(&building, &frozen);
    }

    /// Lattice tokenization is identical before/after freezing the
    /// lexicon — the tokenizer result depends only on the entry set.
    #[test]
    fn lattice_tokenization_survives_freezing(
        lex in lexicon_strategy(),
        text in "[a-z0-9.,% ]{0,48}",
    ) {
        let frozen = Lexicon::from_fst(lex.compiled().clone());
        let a = LatticeTokenizer::new(lex).tokenize(&text);
        let b = LatticeTokenizer::new(frozen).tokenize(&text);
        prop_assert_eq!(a, b);
    }
}
