//! Property-based tests for the tokenizers and taggers.

use proptest::prelude::*;

use pae_text::{
    HmmPosTagger, LatticeTokenizer, Lexicon, LexiconPosTagger, PosTag, PosTagger, SentenceSplitter,
    Tokenizer, WhitespaceTokenizer,
};

fn lexicon_strategy() -> impl Strategy<Value = Lexicon> {
    proptest::collection::vec("[a-z]{2,6}", 1..8)
        .prop_map(|words| Lexicon::from_entries(words.into_iter().map(|w| (w, PosTag::Noun))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lattice tokenization is total, lossless (modulo whitespace), and
    /// offset-correct for any dictionary and any input.
    #[test]
    fn lattice_total_and_offset_correct(
        lex in lexicon_strategy(),
        text in "[a-z0-9.,% ]{0,48}",
    ) {
        let tok = LatticeTokenizer::new(lex);
        let tokens = tok.tokenize(&text);
        let mut prev = 0;
        for t in &tokens {
            prop_assert!(t.start >= prev);
            prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
            prev = t.end;
        }
        let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
        let expected: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rebuilt, expected);
    }

    /// Both taggers return exactly one tag per token on any input.
    #[test]
    fn taggers_are_total(text in "\\PC{0,48}") {
        let tokens = WhitespaceTokenizer::new().tokenize(&text);
        let lexicon_tagger = LexiconPosTagger::new(Lexicon::new());
        prop_assert_eq!(lexicon_tagger.tag(&tokens).len(), tokens.len());
        let hmm = HmmPosTagger::train(&[vec![
            ("a".to_owned(), PosTag::Noun),
            ("1".to_owned(), PosTag::Num),
        ]]);
        prop_assert_eq!(hmm.tag(&tokens).len(), tokens.len());
    }

    /// Sentence splitting never loses non-whitespace characters.
    #[test]
    fn sentence_split_preserves_content(text in "[a-z0-9.!? ]{0,60}") {
        let sentences = SentenceSplitter::new().split(&text);
        let joined: String = sentences.concat().chars().filter(|c| !c.is_whitespace()).collect();
        let original: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(joined, original);
    }

    /// Splitting is stable: re-splitting any produced sentence yields
    /// that sentence back (sentences contain no internal boundaries).
    #[test]
    fn sentence_split_is_stable(text in "[a-z .]{0,40}") {
        let splitter = SentenceSplitter::new();
        for s in splitter.split(&text) {
            let again = splitter.split(&s);
            prop_assert_eq!(again, vec![s]);
        }
    }
}
