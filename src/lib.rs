//! # pae — Accurate Product Attribute Extraction on the Field
//!
//! Facade crate re-exporting the full reproduction of the ICDE 2019
//! paper by Alonso Alemany, Nio, Rezk and Zhang: a bootstrapped,
//! language/domain-independent pipeline that extracts
//! `<product, attribute, value>` triples from e-commerce product pages.
//!
//! ## Crate map
//!
//! * [`obs`] — zero-dependency tracing + metrics: spans with
//!   cross-thread parent tracking, counters/gauges/histograms, and
//!   JSONL / Prometheus / console exporters (side-effect-free w.r.t.
//!   pipeline results)
//! * [`runtime`] — `PAE_JOBS`-bounded worker pools with deterministic
//!   reductions (same seed ⇒ byte-identical output at any thread count)
//! * [`text`] — tokenizers and PoS taggers (the only language-dependent layer)
//! * [`html`] — HTML parsing, dictionary-table detection, text extraction
//! * [`crf`] — linear-chain CRF with L-BFGS / OWL-QN training
//! * [`neural`] — char+word BiLSTM sequence tagger
//! * [`embed`] — word2vec skip-gram with negative sampling
//! * [`synth`] — synthetic e-commerce corpus generator with exact ground truth
//! * [`core`] — the paper's pipeline: seed, diversification, tagging,
//!   cleaning, bootstrap loop, and evaluation metrics; plus the
//!   freeze layer ([`core::frozen`], [`core::bundle`]) that packages a
//!   trained run into a versioned, byte-deterministic model bundle
//! * [`serve`] — HTTP extraction service over frozen bundles: a
//!   bounded worker pool answering `/extract` from a warm extractor
//! * [`report`] — run ledger and regression gates over [`obs`] traces:
//!   `RunSummary` JSON, summary diffs with noise thresholds, and the
//!   `pae-report` CLI that gates CI on perf/quality regressions
//!
//! ## Quickstart
//!
//! ```
//! use pae::core::{BootstrapPipeline, PipelineConfig, TaggerKind};
//! use pae::synth::{CategoryKind, DatasetSpec};
//!
//! // Generate a small synthetic category and run one bootstrap cycle.
//! let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
//!     .products(60)
//!     .generate();
//! let mut config = PipelineConfig::default();
//! config.iterations = 1;
//! config.tagger = TaggerKind::Crf;
//! let outcome = BootstrapPipeline::new(config).run(&dataset);
//! let report = outcome.evaluate(&dataset);
//! assert!(report.precision() > 0.5);
//! ```

pub use pae_core as core;
pub use pae_crf as crf;
pub use pae_embed as embed;
pub use pae_html as html;
pub use pae_neural as neural;
pub use pae_obs as obs;
pub use pae_report as report;
pub use pae_runtime as runtime;
pub use pae_serve as serve;
pub use pae_synth as synth;
pub use pae_text as text;
