//! Determinism across the whole stack: identical seeds must give
//! identical datasets, models, and extracted triples.

use pae::core::{BootstrapPipeline, PipelineConfig};
use pae::synth::{CategoryKind, DatasetSpec};

fn run(seed: u64) -> Vec<pae::core::Triple> {
    let dataset = DatasetSpec::new(CategoryKind::Tennis, seed)
        .products(80)
        .generate();
    let mut cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;
    BootstrapPipeline::new(cfg).run(&dataset).final_triples()
}

#[test]
fn identical_seeds_identical_triples() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_differ() {
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different generator seeds should change the corpus");
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let d1 = DatasetSpec::new(CategoryKind::Shoes, 9).products(30).generate();
    let d2 = DatasetSpec::new(CategoryKind::Shoes, 9).products(30).generate();
    for (a, b) in d1.pages.iter().zip(&d2.pages) {
        assert_eq!(a.html, b.html);
    }
    assert_eq!(d1.query_log, d2.query_log);
}
