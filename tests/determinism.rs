//! Determinism across the whole stack: identical seeds must give
//! identical datasets, models, and extracted triples — including at
//! different worker-pool widths (`PAE_JOBS`).

use pae::core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae::runtime::with_jobs;
use pae::synth::{CategoryKind, DatasetSpec};

fn run(seed: u64) -> Vec<pae::core::Triple> {
    let dataset = DatasetSpec::new(CategoryKind::Tennis, seed)
        .products(80)
        .generate();
    let mut cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;
    BootstrapPipeline::new(cfg).run(&dataset).final_triples()
}

/// Runs one cycle with the given tagger backend at a pinned pool width.
fn run_tagger_at(tagger: TaggerKind, jobs: usize) -> Vec<pae::core::Triple> {
    let dataset = DatasetSpec::new(CategoryKind::Tennis, 42)
        .products(80)
        .generate();
    let mut cfg = PipelineConfig {
        iterations: 1,
        tagger,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;
    with_jobs(jobs, || {
        BootstrapPipeline::new(cfg).run(&dataset).final_triples()
    })
}

/// The tentpole guarantee: the worker pool's fixed chunking + ordered
/// merge make the pipeline byte-identical at any thread count.
fn assert_jobs_invariant(tagger: TaggerKind) {
    let serial = run_tagger_at(tagger, 1);
    let parallel = run_tagger_at(tagger, 4);
    assert!(!serial.is_empty(), "{tagger:?} extracted nothing");
    assert_eq!(
        serial, parallel,
        "{tagger:?}: PAE_JOBS=1 vs PAE_JOBS=4 diverged"
    );
}

#[test]
fn crf_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Crf);
}

#[test]
fn rnn_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Rnn);
}

#[test]
fn ensemble_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Ensemble);
}

/// The observability hard constraint: collecting telemetry must be
/// side-effect-free w.r.t. results — `final_triples()` is
/// byte-identical with the obs collector enabled or disabled, at
/// serial and parallel pool widths.
#[test]
fn obs_collection_does_not_change_results() {
    let baseline = run_tagger_at(TaggerKind::Crf, 1);
    assert!(!baseline.is_empty());
    for jobs in [1usize, 4] {
        pae::obs::set_enabled(true);
        pae::obs::reset();
        let traced = run_tagger_at(TaggerKind::Crf, jobs);
        let records = pae::obs::snapshot();
        pae::obs::set_enabled(false);
        pae::obs::reset();
        assert_eq!(
            baseline, traced,
            "PAE_JOBS={jobs}: enabling the obs collector changed the output"
        );
        assert!(
            records.iter().any(|r| r.name == "bootstrap.run"),
            "collection was enabled but produced no pipeline spans"
        );
    }
}

#[test]
fn identical_seeds_identical_triples() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_differ() {
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different generator seeds should change the corpus");
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let d1 = DatasetSpec::new(CategoryKind::Shoes, 9)
        .products(30)
        .generate();
    let d2 = DatasetSpec::new(CategoryKind::Shoes, 9)
        .products(30)
        .generate();
    for (a, b) in d1.pages.iter().zip(&d2.pages) {
        assert_eq!(a.html, b.html);
    }
    assert_eq!(d1.query_log, d2.query_log);
}
