//! Determinism across the whole stack: identical seeds must give
//! identical datasets, models, and extracted triples — including at
//! different worker-pool widths (`PAE_JOBS`).

use pae::core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae::runtime::with_jobs;
use pae::synth::{CategoryKind, DatasetSpec};

fn run(seed: u64) -> Vec<pae::core::Triple> {
    let dataset = DatasetSpec::new(CategoryKind::Tennis, seed)
        .products(80)
        .generate();
    let mut cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;
    BootstrapPipeline::new(cfg).run(&dataset).final_triples()
}

/// Runs one cycle with the given tagger backend at a pinned pool width.
fn run_tagger_at(tagger: TaggerKind, jobs: usize) -> Vec<pae::core::Triple> {
    let dataset = DatasetSpec::new(CategoryKind::Tennis, 42)
        .products(80)
        .generate();
    let mut cfg = PipelineConfig {
        iterations: 1,
        tagger,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;
    with_jobs(jobs, || {
        BootstrapPipeline::new(cfg).run(&dataset).final_triples()
    })
}

/// The tentpole guarantee: the worker pool's fixed chunking + ordered
/// merge make the pipeline byte-identical at any thread count.
fn assert_jobs_invariant(tagger: TaggerKind) {
    let serial = run_tagger_at(tagger, 1);
    let parallel = run_tagger_at(tagger, 4);
    assert!(!serial.is_empty(), "{tagger:?} extracted nothing");
    assert_eq!(
        serial, parallel,
        "{tagger:?}: PAE_JOBS=1 vs PAE_JOBS=4 diverged"
    );
}

#[test]
fn crf_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Crf);
}

#[test]
fn rnn_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Rnn);
}

#[test]
fn ensemble_triples_identical_across_thread_counts() {
    assert_jobs_invariant(TaggerKind::Ensemble);
}

/// The global obs collector is process-wide state; tests that toggle
/// it must not interleave.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The observability hard constraint: collecting telemetry must be
/// side-effect-free w.r.t. results — `final_triples()` is
/// byte-identical with the obs collector enabled or disabled, at
/// serial and parallel pool widths.
#[test]
fn obs_collection_does_not_change_results() {
    let _l = obs_lock();
    let baseline = run_tagger_at(TaggerKind::Crf, 1);
    assert!(!baseline.is_empty());
    for jobs in [1usize, 4] {
        pae::obs::set_enabled(true);
        pae::obs::reset();
        let traced = run_tagger_at(TaggerKind::Crf, jobs);
        let records = pae::obs::snapshot();
        pae::obs::set_enabled(false);
        pae::obs::reset();
        assert_eq!(
            baseline, traced,
            "PAE_JOBS={jobs}: enabling the obs collector changed the output"
        );
        assert!(
            records.iter().any(|r| r.name == "bootstrap.run"),
            "collection was enabled but produced no pipeline spans"
        );
    }
}

/// The profiling hard constraint: the counting allocator and span
/// allocation attribution must be side-effect-free w.r.t. results —
/// `final_triples()` is byte-identical with profiling enabled or
/// disabled, at serial and parallel pool widths.
#[test]
fn allocation_profiling_does_not_change_results() {
    let _l = obs_lock();
    let baseline = run_tagger_at(TaggerKind::Crf, 1);
    assert!(!baseline.is_empty());
    for jobs in [1usize, 4] {
        pae::obs::set_prof_enabled(true);
        let profiled = run_tagger_at(TaggerKind::Crf, jobs);
        let stats = pae::obs::prof_stats();
        pae::obs::set_prof_enabled(false);
        assert_eq!(
            baseline, profiled,
            "PAE_JOBS={jobs}: enabling allocation profiling changed the output"
        );
        assert!(
            stats.alloc_count > 0,
            "PAE_JOBS={jobs}: profiling was on but counted no allocations"
        );
    }
}

/// Profiling composed with collection: the quality section a CI gate
/// consumes is byte-identical whether or not the run was profiled.
#[test]
fn profiled_quality_section_is_byte_identical() {
    let _l = obs_lock();
    let reference = quality_section(1);
    for jobs in [1usize, 4] {
        pae::obs::set_prof_enabled(true);
        let profiled = quality_section(jobs);
        pae::obs::set_prof_enabled(false);
        assert_eq!(
            profiled, reference,
            "PAE_JOBS={jobs}: profiling changed the quality section"
        );
    }
}

/// Captures the quality section of one traced CRF run at `jobs`.
/// Callers must hold [`obs_lock`].
fn quality_section(jobs: usize) -> String {
    pae::obs::reset();
    pae::obs::set_enabled(true);
    // Our own outer span: `subtree` below keeps the summary immune
    // to records any concurrently-running test may emit.
    {
        let _span = pae::obs::span("determinism.quality");
        let _ = run_tagger_at(TaggerKind::Crf, jobs);
    }
    let trace = pae::obs::reader::Trace::from_current();
    pae::obs::set_enabled(false);
    pae::obs::reset();
    let root_records = trace.spans_named("determinism.quality");
    let root = root_records.first().expect("outer span recorded").span;
    let summary = pae::report::summary::RunSummary::build(
        pae::report::summary::RunMeta {
            name: "determinism".into(),
            git_rev: "test".into(),
            config_hash: "test".into(),
            pae_jobs: String::new(),
            scale: "test".into(),
        },
        &trace.subtree(root),
    );
    assert_eq!(summary.runs.len(), 1, "exactly one bootstrap.run");
    assert!(
        !summary.runs[0].is_empty(),
        "iteration series must not be empty"
    );
    summary.quality_json(0)
}

/// The ledger hard constraint: the quality section of a `RunSummary`
/// (iteration series, drift, evals — everything except timings) is
/// byte-identical across repeated runs AND across pool widths. This is
/// what lets `pae-report check` gate quality with zero tolerance for
/// nondeterminism.
#[test]
fn run_summary_quality_is_byte_identical_across_thread_counts() {
    let _l = obs_lock();
    let sections: Vec<(usize, String)> = [1usize, 1, 4, 4]
        .into_iter()
        .map(|jobs| (jobs, quality_section(jobs)))
        .collect();
    let (_, reference) = &sections[0];
    for (jobs, q) in &sections[1..] {
        assert_eq!(
            q, reference,
            "PAE_JOBS={jobs}: quality section diverged from the first PAE_JOBS=1 run"
        );
    }
}

/// The sparse-gradient guarantee: the allocation-free sparse fold must
/// be byte-identical to the legacy dense fold it replaced (kept behind
/// [`pae::crf::with_dense_grad`] for one release) — at serial and
/// parallel pool widths.
#[test]
fn dense_and_sparse_gradient_folds_extract_identical_triples() {
    for jobs in [1usize, 4] {
        let sparse = run_tagger_at(TaggerKind::Crf, jobs);
        let dense = pae::crf::with_dense_grad(true, || run_tagger_at(TaggerKind::Crf, jobs));
        assert!(!sparse.is_empty(), "PAE_JOBS={jobs}: extracted nothing");
        assert_eq!(
            sparse, dense,
            "PAE_JOBS={jobs}: dense vs sparse gradient fold diverged"
        );
    }
}

/// Same guarantee one level up: the `RunSummary` quality section a CI
/// gate would consume is byte-identical between the dense and sparse
/// gradient paths at both pool widths.
#[test]
fn dense_and_sparse_gradient_folds_quality_sections_match() {
    let _l = obs_lock();
    let reference = quality_section(1);
    for jobs in [1usize, 4] {
        let dense = pae::crf::with_dense_grad(true, || quality_section(jobs));
        assert_eq!(
            dense, reference,
            "PAE_JOBS={jobs}: dense-fold quality section diverged"
        );
    }
}

/// Captures one provenance-enabled CRF run at `jobs`: the final
/// triples plus the lineage-ledger JSON built from the run's own span
/// subtree. Callers must hold [`obs_lock`].
fn provenance_run(jobs: usize) -> (Vec<pae::core::Triple>, String) {
    pae::obs::reset();
    pae::obs::set_enabled(true);
    pae::obs::set_provenance_enabled(true);
    pae::obs::set_capacity(pae::obs::PROVENANCE_CAPACITY);
    let triples;
    {
        let _span = pae::obs::span("determinism.provenance");
        triples = run_tagger_at(TaggerKind::Crf, jobs);
    }
    let trace = pae::obs::reader::Trace::from_current();
    pae::obs::set_provenance_enabled(false);
    pae::obs::set_enabled(false);
    pae::obs::set_capacity(pae::obs::DEFAULT_CAPACITY);
    pae::obs::reset();
    let root_records = trace.spans_named("determinism.provenance");
    let root = root_records.first().expect("outer span recorded").span;
    let sub = trace.subtree(root);
    assert!(
        !sub.provenance_records().is_empty(),
        "provenance was enabled but the run emitted no lineage records"
    );
    let ledger = pae::report::lineage::LineageLedger::build(&sub);
    (triples, ledger.to_json())
}

/// The provenance hard constraint, both halves: recording lineage is
/// side-effect-free (final triples byte-identical with provenance on
/// or off, at serial and parallel pool widths), and the ledger itself
/// is byte-identical across repeats and across `PAE_JOBS=1` vs `4`.
#[test]
fn provenance_ledger_is_deterministic_and_side_effect_free() {
    let _l = obs_lock();
    let baseline = run_tagger_at(TaggerKind::Crf, 1); // provenance off
    assert!(!baseline.is_empty());
    let (t1, l1) = provenance_run(1);
    let (t1b, l1b) = provenance_run(1);
    let (t4, l4) = provenance_run(4);
    assert_eq!(baseline, t1, "enabling provenance changed the output");
    assert_eq!(t1, t1b, "repeat run diverged with provenance on");
    assert_eq!(t1, t4, "PAE_JOBS=4 diverged with provenance on");
    assert_eq!(l1, l1b, "ledger not byte-identical across repeats");
    assert_eq!(l1, l4, "ledger not byte-identical across pool widths");
    assert!(
        l1.contains("\"fate\": \"kept\""),
        "ledger records no kept disposition: {l1}"
    );
}

/// Same side-effect guarantee for the ensemble backend, whose
/// provenance path adds per-candidate confidence scoring and
/// intersection-drop records.
#[test]
fn ensemble_provenance_is_side_effect_free() {
    let _l = obs_lock();
    let baseline = run_tagger_at(TaggerKind::Ensemble, 4);
    pae::obs::reset();
    pae::obs::set_enabled(true);
    pae::obs::set_provenance_enabled(true);
    pae::obs::set_capacity(pae::obs::PROVENANCE_CAPACITY);
    let traced = run_tagger_at(TaggerKind::Ensemble, 4);
    let trace = pae::obs::reader::Trace::from_current();
    pae::obs::set_provenance_enabled(false);
    pae::obs::set_enabled(false);
    pae::obs::set_capacity(pae::obs::DEFAULT_CAPACITY);
    pae::obs::reset();
    assert_eq!(
        baseline, traced,
        "ensemble output changed with provenance on"
    );
    assert!(
        !trace.provenance_records().is_empty(),
        "ensemble run emitted no lineage records"
    );
}

#[test]
fn identical_seeds_identical_triples() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_differ() {
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different generator seeds should change the corpus");
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let d1 = DatasetSpec::new(CategoryKind::Shoes, 9)
        .products(30)
        .generate();
    let d2 = DatasetSpec::new(CategoryKind::Shoes, 9)
        .products(30)
        .generate();
    for (a, b) in d1.pages.iter().zip(&d2.pages) {
        assert_eq!(a.html, b.html);
    }
    assert_eq!(d1.query_log, d2.query_log);
}
