//! Substrate-chain integration: HTML → tables → tokenizer → PoS → CRF,
//! wired by hand (no pipeline), to pin the crate boundaries.

use pae::crf::{train, FeatureExtractor, FeatureIndex, Instance, TrainConfig};
use pae::html::{extract_tables, parse};
use pae::text::{Lexicon, LexiconPosTagger, PosTag, PosTagger, Tokenizer, WhitespaceTokenizer};

#[test]
fn html_table_to_crf_chain() {
    // 1. Parse a product-like page and read its dictionary table.
    let html = "<html><body>\
        <table>\
          <tr><th>color</th><td>deep red</td></tr>\
          <tr><th>weight</th><td>2.5kg</td></tr>\
        </table>\
        <p>this bag is deep red. weight : 2.5kg.</p>\
        </body></html>";
    let forest = parse(html);
    let tables = extract_tables(&forest);
    let dict = tables[0].as_dictionary().expect("dictionary table");
    assert_eq!(dict.pairs.len(), 2);

    // 2. Tokenize + tag the description sentences.
    let tokenizer = WhitespaceTokenizer::new();
    let lexicon = Lexicon::from_entries([
        ("kg", PosTag::Unit),
        ("red", PosTag::Adj),
        ("deep", PosTag::Adj),
    ]);
    let tagger = LexiconPosTagger::new(lexicon);

    // 3. Build two tiny training sentences from the table knowledge:
    //    label the color value (label 1) and the weight value (label 2).
    let extractor = FeatureExtractor::default();
    let mut index = FeatureIndex::new();
    let mut instances = Vec::new();
    for (text, labels) in [
        ("this bag is deep red", vec![0, 0, 0, 1, 1]),
        ("weight : 2.5kg", vec![0, 0, 2, 2]),
        ("this bag is deep blue", vec![0, 0, 0, 1, 1]),
        ("weight : 3.5kg", vec![0, 0, 2, 2]),
    ] {
        let toks = tokenizer.tokenize(text);
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        let tags = tagger.tag(&toks);
        let pos: Vec<&str> = tags.iter().map(|t| t.mnemonic()).collect();
        assert_eq!(words.len(), labels.len(), "{text}: {words:?}");
        instances.push(Instance {
            features: extractor.encode_train(&words, &pos, 0, &mut index),
            labels,
        });
    }

    // 4. Train and decode an unseen sentence.
    let model = train(&instances, index.len(), 3, &TrainConfig::default());
    let toks = tokenizer.tokenize("weight : 9.5kg");
    let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let tags = tagger.tag(&toks);
    let pos: Vec<&str> = tags.iter().map(|t| t.mnemonic()).collect();
    let feats = extractor.encode(&words, &pos, 0, &index);
    let decoded = model.viterbi(&feats);
    assert_eq!(decoded[2], 2, "decoded: {decoded:?} for {words:?}");
    assert_eq!(decoded[3], 2, "decoded: {decoded:?} for {words:?}");
}

#[test]
fn word2vec_separates_table_value_clusters() {
    // Values from two different table columns occupy different contexts;
    // the embedding must reflect that (after mean-centering, which the
    // pipeline's semantic cleaner applies internally — here raw cosine
    // ordering is enough).
    use pae::embed::{W2vConfig, W2vModel};
    let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
    let mut corpus = Vec::new();
    for i in 0..120 {
        let c = ["red", "blue", "green"][i % 3];
        let w = ["2", "3", "4"][i % 3];
        corpus.push(mk(&format!("color of bag {c} lovely")));
        corpus.push(mk(&format!("weight near {w} kg heavy")));
    }
    let model = W2vModel::train(
        &corpus,
        &W2vConfig {
            dim: 16,
            epochs: 15,
            min_count: 2,
            subsample: 0.0,
            seed: 3,
            ..Default::default()
        },
    )
    .expect("vocab");
    let same = model.cosine("red", "blue").unwrap();
    let cross = model.cosine("red", "3").unwrap();
    assert!(same > cross, "cos(red,blue)={same} vs cos(red,3)={cross}");
}
