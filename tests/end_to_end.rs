//! Cross-crate integration tests: the full pipeline on generated
//! corpora, checking the paper-shape properties end to end.

use pae::core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae::synth::{CategoryKind, DatasetSpec};

fn quick(iterations: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        iterations,
        ..Default::default()
    };
    cfg.crf.max_iters = 40;
    cfg
}

#[test]
fn crf_pipeline_reaches_high_precision_and_grows_coverage() {
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
        .products(150)
        .generate();
    let outcome = BootstrapPipeline::new(quick(2)).run(&dataset);

    let seed = outcome.seed_report(&dataset);
    assert!(
        seed.pair_precision() > 0.85,
        "seed pair precision {}",
        seed.pair_precision()
    );
    assert!(seed.coverage() < 0.6, "seed coverage unexpectedly high");

    let report = outcome.evaluate(&dataset);
    assert!(report.precision() > 0.8, "precision {}", report.precision());
    assert!(
        report.coverage() > 2.0 * seed.coverage(),
        "bootstrap barely grew coverage: {} vs seed {}",
        report.coverage(),
        seed.coverage()
    );
}

#[test]
fn rnn_pipeline_runs_and_underperforms_default_crf() {
    let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 42)
        .products(120)
        .generate();
    let corpus = pae::core::parse_corpus(&dataset);

    let crf = BootstrapPipeline::new(quick(1)).run_on_corpus(&dataset, &corpus);
    let rnn_cfg = PipelineConfig {
        tagger: TaggerKind::Rnn,
        ..quick(1)
    };
    let rnn = BootstrapPipeline::new(rnn_cfg).run_on_corpus(&dataset, &corpus);

    let crf_report = crf.evaluate(&dataset);
    let rnn_report = rnn.evaluate(&dataset);
    assert!(crf_report.n_triples() > 0 && rnn_report.n_triples() > 0);
    // Out of the box, CRF is the more stable backend (the paper's §VII
    // summary); allow a small tolerance.
    assert!(
        crf_report.precision() + 0.03 > rnn_report.precision(),
        "CRF {} vs RNN {}",
        crf_report.precision(),
        rnn_report.precision()
    );
}

#[test]
fn cleaning_direction_on_noisy_category() {
    // On the table-poor, noisy Garden category the no-cleaning variant
    // must not beat the cleaned one by more than noise, and must
    // produce at least as many (dirtier) triples.
    let dataset = DatasetSpec::new(CategoryKind::Garden, 42)
        .products(250)
        .generate();
    let corpus = pae::core::parse_corpus(&dataset);

    let clean = BootstrapPipeline::new(quick(2)).run_on_corpus(&dataset, &corpus);
    let dirty =
        BootstrapPipeline::new(quick(2).without_cleaning()).run_on_corpus(&dataset, &corpus);

    let clean_report = clean.evaluate(&dataset);
    let dirty_report = dirty.evaluate(&dataset);
    assert!(
        dirty_report.n_triples() >= clean_report.n_triples(),
        "cleaning added triples: {} vs {}",
        dirty_report.n_triples(),
        clean_report.n_triples()
    );
    assert!(
        clean_report.precision() >= dirty_report.precision() - 0.02,
        "cleaning hurt precision: {} vs {}",
        clean_report.precision(),
        dirty_report.precision()
    );
}

#[test]
fn heterogeneous_category_is_less_precise_than_homogeneous_child() {
    let mk = |kind| {
        let dataset = DatasetSpec::new(kind, 42).products(150).generate();
        let outcome = BootstrapPipeline::new(quick(2)).run(&dataset);
        outcome.evaluate(&dataset).precision()
    };
    let carriers = mk(CategoryKind::BabyCarriers);
    let goods = mk(CategoryKind::BabyGoods);
    assert!(
        carriers > goods,
        "homogeneous {carriers} should beat heterogeneous {goods}"
    );
}

#[test]
fn german_category_works_end_to_end() {
    let dataset = DatasetSpec::new(CategoryKind::MailboxDe, 42)
        .products(120)
        .generate();
    let outcome = BootstrapPipeline::new(quick(2)).run(&dataset);
    let report = outcome.evaluate(&dataset);
    assert!(
        report.n_triples() > 20,
        "too few triples: {}",
        report.n_triples()
    );
    assert!(report.precision() > 0.7, "precision {}", report.precision());
}
