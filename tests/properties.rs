//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use pae::html::entity::{decode_entities, escape};
use pae::text::{LatticeTokenizer, Lexicon, PosTag, Tokenizer, WhitespaceTokenizer};

proptest! {
    /// Escaping then decoding any string is the identity.
    #[test]
    fn entity_escape_roundtrip(s in "\\PC*") {
        prop_assert_eq!(decode_entities(&escape(&s)), s);
    }

    /// Whitespace tokenizer offsets always slice back to the surface
    /// form, in order, for arbitrary input.
    #[test]
    fn whitespace_tokenizer_offsets(s in "\\PC{0,60}") {
        let toks = WhitespaceTokenizer::new().tokenize(&s);
        let mut prev = 0;
        for t in &toks {
            prop_assert!(t.start >= prev);
            prop_assert!(t.end <= s.len());
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
            prev = t.end;
        }
    }

    /// The lattice tokenizer never loses non-whitespace content: the
    /// concatenated tokens equal the input with whitespace removed.
    #[test]
    fn lattice_tokenizer_is_lossless(s in "[a-z0-9., ]{0,40}") {
        let lex = Lexicon::from_entries([
            ("aka", PosTag::Adj),
            ("kaban", PosTag::Noun),
            ("kg", PosTag::Unit),
        ]);
        let toks = LatticeTokenizer::new(lex).tokenize(&s);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        let expected: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rebuilt, expected);
    }

    /// HTML parsing never panics and parses to a consistent forest for
    /// arbitrary tag soup.
    #[test]
    fn html_parse_total(s in "\\PC{0,120}") {
        let forest = pae::html::parse(&s);
        for root in &forest {
            // Walking the tree must terminate and text extraction work.
            let _ = root.text_content();
        }
    }

    /// Value normalization (tokenize + join) is idempotent.
    #[test]
    fn normalization_idempotent(s in "[a-z0-9. ]{0,30}") {
        let tok = WhitespaceTokenizer::new();
        let once = pae::synth::dataset::normalize_with(&tok, &s);
        let twice = pae::synth::dataset::normalize_with(&tok, &once);
        prop_assert_eq!(once, twice);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The per-triple veto rules (symbols, markup, overlong) are
    /// idempotent, and re-applying the full veto can only shrink the
    /// set (the popularity rule keeps "top 80%", which is legitimately
    /// non-idempotent on ties — re-ranking a trimmed set trims again).
    #[test]
    fn veto_shrinks_and_per_triple_rules_are_idempotent(
        values in proptest::collection::vec("[a-z*;]{1,34}", 1..24),
    ) {
        use pae::core::cleaning::apply_veto;
        use pae::core::Triple;
        let triples: Vec<Triple> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Triple::new(i as u32 % 5, "attr", v.clone()))
            .collect();
        let (once, _) = apply_veto(triples, 0.8, 30);
        let (twice, stats) = apply_veto(once.clone(), 0.8, 30);
        prop_assert_eq!(stats.symbols, 0);
        prop_assert_eq!(stats.markup, 0);
        prop_assert_eq!(stats.long, 0);
        prop_assert!(twice.len() <= once.len());
        prop_assert!(twice.iter().all(|t| once.contains(t)));
    }
}
