//! Bundle compatibility and zero-copy equivalence, over the committed
//! smoke fixtures under `crates/pae-bench/benches/data/`: the same
//! frozen model written in schema v1 (eager) and schema v2 (zero-copy)
//! by `pae-bench freeze --schema 1|2` with MASTER_SEED=42.
//!
//! Four guarantees:
//!
//! 1. **Backward compat** — schema-v1 bundles written before the
//!    compaction still load (legacy eager path) and decode to the same
//!    model as the v2 encoding.
//! 2. **Zero-copy equivalence** — the borrowed-arena extractor is
//!    byte-identical to the eager-rehydrated one, at `PAE_JOBS=1` and
//!    `4`.
//! 3. **Serve-vs-direct** — an HTTP server answering from the
//!    zero-copy extractor returns exactly the triples direct in-process
//!    extraction produces.
//! 4. **No-reference mode** — pre-v3 bundles carry no freeze-time
//!    reference stats; they must report `reference() == Ok(None)` and
//!    keep serving, while the current (v3) encoding round-trips the
//!    reference-stats section intact.

use std::path::Path;
use std::sync::Arc;

use pae::core::frozen::FrozenExtractor;
use pae::core::{LoadedBundle, Triple, BUNDLE_SCHEMA_V2, BUNDLE_SCHEMA_VERSION};
use pae::runtime::with_jobs;
use pae::serve::{http_request, parse_extract_response, Server, ServerConfig};
use pae::synth::{CategoryKind, DatasetSpec};

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/pae-bench/benches/data"
    ))
    .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Pages matching the fixtures' training category (the extractor is a
/// model, not a parser — any page set works, but in-domain pages
/// exercise the lexicon/veto arenas for real).
fn fixture_pages() -> Vec<(u32, String)> {
    DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
        .products(60)
        .generate()
        .pages
        .iter()
        .take(20)
        .map(|p| (p.id, p.html.clone()))
        .collect()
}

#[test]
fn v1_fixture_loads_through_the_legacy_path() {
    let v1 = LoadedBundle::from_bytes(fixture_bytes("smoke_v1.paeb")).expect("v1 loads");
    assert_eq!(v1.schema_version(), 1, "fixture must be schema v1");
    let model = v1.model().expect("v1 model materializes");
    assert!(!model.attrs.is_empty());
    let extractor = v1.extractor().expect("v1 extractor rehydrates");
    assert_eq!(extractor.attrs().len(), model.attrs.len());
}

#[test]
fn v1_and_v2_fixtures_hold_the_same_model() {
    let v1 = LoadedBundle::from_bytes(fixture_bytes("smoke_v1.paeb")).expect("v1 loads");
    let v2 = LoadedBundle::from_bytes(fixture_bytes("smoke_v2.paeb")).expect("v2 loads");
    assert_eq!(
        v2.schema_version(),
        BUNDLE_SCHEMA_V2,
        "fixture must be schema v2"
    );
    assert_eq!(
        v1.model().expect("v1 model"),
        v2.model().expect("v2 model"),
        "schema migration changed the model"
    );
}

/// Re-encoding the model materialized from a legacy bundle must
/// reproduce the v2 fixture bit for bit: the migration path
/// (load v1 → encode_v2) is deterministic and canonical.
#[test]
fn reencoding_a_v1_model_is_byte_identical_to_the_v2_fixture() {
    let v1 = LoadedBundle::from_bytes(fixture_bytes("smoke_v1.paeb")).expect("v1 loads");
    let model = v1.model().expect("v1 model");
    assert_eq!(
        pae::core::bundle::encode_v2(&model),
        fixture_bytes("smoke_v2.paeb"),
        "encode_v2(model_from_v1) != committed v2 bytes"
    );
}

/// Pre-v3 bundles have no reference-stats section: both fixtures must
/// report `Ok(None)` — the monitor's "no-reference mode", never an
/// error — and the v2 extractor keeps working without one.
#[test]
fn pre_v3_fixtures_load_in_no_reference_mode() {
    for name in ["smoke_v1.paeb", "smoke_v2.paeb"] {
        let loaded = LoadedBundle::from_bytes(fixture_bytes(name)).expect("fixture loads");
        assert_eq!(
            loaded
                .reference()
                .expect("reference never errors on fixtures"),
            None,
            "{name}: pre-v3 bundle invented reference stats"
        );
    }
    let v2 = LoadedBundle::from_bytes(fixture_bytes("smoke_v2.paeb")).expect("v2 loads");
    let extractor = v2.extractor().expect("no-reference bundle still serves");
    assert!(!extract_at(&extractor, &fixture_pages(), 1).is_empty());
}

/// The current encoder emits schema v3 and round-trips the optional
/// reference-stats section exactly — both absent (legacy model) and
/// present (synthetic stats grafted onto the fixture model).
#[test]
fn v3_encoding_round_trips_reference_stats() {
    use pae::core::quality::{CONF_BUCKETS, LEN_BUCKETS};
    use pae::core::{AttrReference, BackendReference, ReferenceStats};

    let v1 = LoadedBundle::from_bytes(fixture_bytes("smoke_v1.paeb")).expect("v1 loads");
    let mut model = v1.model().expect("v1 model");
    assert_eq!(model.reference, None, "legacy model carries no stats");

    // Absent: a reference-free model still encodes as v3, loads, and
    // reports no-reference mode.
    let bare = pae::core::bundle::encode(&model);
    let loaded = LoadedBundle::from_bytes(bare).expect("v3 loads");
    assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_VERSION);
    assert_eq!(loaded.reference().expect("decodes"), None);
    assert_eq!(loaded.model().expect("model"), model);

    // Present: stats survive encode → load byte-exactly.
    let stats = ReferenceStats {
        pages: 60,
        empty_pages: 3,
        total_triples: 410,
        tokens: 9000,
        oov_tokens: 120,
        backends: vec![BackendReference {
            backend: "crf".to_owned(),
            confidence: (0..CONF_BUCKETS as u64).collect(),
        }],
        attrs: vec![AttrReference {
            attribute: "suction".to_owned(),
            triples: 41,
            top_values: vec![("2000pa".to_owned(), 17), ("1800pa".to_owned(), 9)],
            value_len: (0..LEN_BUCKETS as u64).rev().collect(),
        }],
    };
    model.reference = Some(stats.clone());
    let loaded = LoadedBundle::from_bytes(pae::core::bundle::encode(&model)).expect("v3 loads");
    assert_eq!(loaded.schema_version(), BUNDLE_SCHEMA_VERSION);
    assert_eq!(loaded.reference().expect("decodes"), Some(stats));
    assert_eq!(loaded.model().expect("model"), model);
}

fn extract_at(extractor: &FrozenExtractor, pages: &[(u32, String)], jobs: usize) -> Vec<Triple> {
    with_jobs(jobs, || extractor.extract_pages(pages))
}

/// The tentpole correctness bar: the zero-copy extractor (arenas
/// borrowed from the loaded v2 bytes) extracts byte-identical triples
/// to the eager path, and both are thread-count invariant.
#[test]
fn zero_copy_extraction_matches_eager_at_any_job_count() {
    let bytes: Arc<[u8]> = fixture_bytes("smoke_v2.paeb").into();
    let loaded = LoadedBundle::from_shared(bytes).expect("v2 loads");
    let zero_copy = loaded.extractor().expect("zero-copy extractor");
    let eager = loaded
        .model()
        .expect("materialize")
        .extractor()
        .expect("eager extractor");
    let pages = fixture_pages();

    let reference = extract_at(&eager, &pages, 1);
    assert!(!reference.is_empty(), "fixture extracts nothing");
    for jobs in [1usize, 4] {
        assert_eq!(
            extract_at(&zero_copy, &pages, jobs),
            reference,
            "PAE_JOBS={jobs}: zero-copy diverged from eager"
        );
        assert_eq!(
            extract_at(&eager, &pages, jobs),
            reference,
            "PAE_JOBS={jobs}: eager extraction is thread-count dependent"
        );
    }
}

/// Serving from the zero-copy extractor returns exactly what direct
/// in-process extraction produces, at both pool widths.
#[test]
fn serve_from_v2_bundle_matches_direct_extraction() {
    let loaded = LoadedBundle::from_bytes(fixture_bytes("smoke_v2.paeb")).expect("v2 loads");
    let pages = fixture_pages();
    let direct = loaded.extractor().expect("extractor");
    let at_one = extract_at(&direct, &pages, 1);
    let at_four = extract_at(&direct, &pages, 4);
    assert_eq!(at_one, at_four, "direct extraction depends on PAE_JOBS");

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        bundle_hash: loaded.content_hash(),
        ..ServerConfig::default()
    };
    let server =
        Server::start(loaded.extractor().expect("extractor"), &config).expect("start server");

    let mut body = String::from("{\"pages\":[");
    for (i, (product, html)) in pages.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"product\":{product},\"html\":"));
        pae::obs::json::write_str(&mut body, html);
        body.push('}');
    }
    body.push_str("]}");
    let (status, response) =
        http_request(server.addr(), "POST", "/extract", &body).expect("batch extract");
    assert_eq!(status, 200, "{response}");
    let served = parse_extract_response(&response).expect("parse");
    assert_eq!(served, at_one, "served triples diverged from direct");
    server.shutdown();
}
