//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63). The surface mirrors
//! `crossbeam::thread::scope`: the closure passed to
//! [`thread::Scope::spawn`] receives a `&Scope` argument (unused by
//! callers that write `|_|`), and [`thread::scope`] returns a `Result`
//! that is `Err` when a spawned thread panicked.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure; spawned threads
    /// may borrow non-`'static` data that outlives the scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure
        /// receives the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let nested = Scope { inner: inner_scope };
                    f(&nested)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the
    /// enclosing stack frame.
    ///
    /// Returns `Err` when a spawned-and-not-explicitly-joined thread
    /// panicked (std's scope re-raises those at scope exit; the
    /// re-raise is caught here), matching crossbeam's contract. A
    /// panic in the main closure is also reported as `Err` — a minor
    /// deviation from crossbeam, which propagates it; every caller in
    /// this workspace just `expect`s the result.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let mut slots = vec![0usize; 8];
        thread::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i * 2;
                });
            }
        })
        .expect("scope");
        assert_eq!(slots, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn panicking_thread_yields_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn joined_results_are_returned() {
        let doubled = thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().expect("join")
        })
        .expect("scope");
        assert_eq!(doubled, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    v.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("scope");
        assert_eq!(v.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
