//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// A recipe for generating values of one type. Unlike real proptest
/// there is no shrinking: a strategy is just a deterministic function
/// of the RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_combinators() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0usize..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
        let nested = (1usize..3).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..50 {
            let v = nested.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 3);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (0usize..3, -1.0f64..1.0, "[a-b]{2,2}");
        for _ in 0..50 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 3);
            assert!((-1.0..1.0).contains(&b));
            assert_eq!(c.len(), 2);
        }
    }
}
