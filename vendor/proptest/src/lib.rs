//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the narrow slice of proptest the workspace's tests
//! use: value generation (no shrinking) for range, string-regex,
//! tuple, and vec strategies, combined with the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_assume!` macros and a
//! deterministic [`test_runner::TestRunner`]. Failing cases report the
//! case index and per-test seed instead of a minimized input.
//!
//! Supported string patterns are a regex subset: a concatenation of
//! atoms (`\PC` for any printable char, or a character class like
//! `[a-z0-9., ]` with ranges), each with an optional `*` or `{m,n}`
//! quantifier.

#![warn(missing_docs)]

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Sizes accepted by [`vec`]: an exact `usize` or a half-open
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Converts into inclusive `(min, max)` bounds.
        fn into_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn into_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.into_bounds();
        VecStrategy { element, min, max }
    }
}

/// The glob-import surface (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property; failures panic with the
/// formatted message (the runner reports the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Rejects the current case when the condition does not hold; the
/// runner draws a replacement case instead of counting it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::test_runner::mark_rejected();
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) {...}`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), ($($strat,)+), |($($pat,)+)| $body);
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
