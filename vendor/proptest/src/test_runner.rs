//! The deterministic case runner behind the [`crate::proptest!`] macro.

use std::cell::Cell;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

thread_local! {
    static REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current case as rejected (used by `prop_assume!`).
pub fn mark_rejected() {
    REJECTED.with(|r| r.set(true));
}

fn take_rejected() -> bool {
    REJECTED.with(|r| r.replace(false))
}

/// Drives one property over many generated cases.
///
/// Generation is deterministic: the RNG is seeded from the test name
/// (plus `PROPTEST_SEED` when set), so failures reproduce across runs
/// and machines.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `body` against `config.cases` generated values.
    ///
    /// On a panic inside `body`, re-panics after printing the case
    /// index and seed (there is no shrinking in this stand-in).
    pub fn run<S: Strategy>(&mut self, name: &str, strategy: S, mut body: impl FnMut(S::Value)) {
        let seed = base_seed(name);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < self.config.cases {
            let value = strategy.generate(&mut rng);
            take_rejected(); // clear any stale flag
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(value);
            }));
            case += 1;
            match outcome {
                Ok(()) if take_rejected() => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Ok(()) => passed += 1,
                Err(payload) => {
                    eprintln!(
                        "proptest stand-in: {name} failed at case {case} \
                         (seed {seed}; set PROPTEST_SEED to vary)"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Per-test seed: stable FNV-1a hash of the test name, XORed with the
/// optional `PROPTEST_SEED` environment override.
fn base_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut count = 0u32;
        TestRunner::new(ProptestConfig::with_cases(40)).run("forty", 0usize..10, |v| {
            assert!(v < 10);
            count += 1;
        });
        assert_eq!(count, 40);
    }

    #[test]
    fn assume_rejections_draw_replacements() {
        let mut kept = 0u32;
        TestRunner::new(ProptestConfig::with_cases(20)).run("assume", 0usize..10, |v| {
            crate::prop_assume!(v % 2 == 0);
            assert!(v % 2 == 0);
            kept += 1;
        });
        assert_eq!(kept, 20);
    }

    #[test]
    #[should_panic]
    fn failures_propagate() {
        TestRunner::new(ProptestConfig::with_cases(50)).run("fail", 0usize..10, |v| {
            assert!(v < 5, "deliberate failure");
        });
    }
}
