//! String generation from a regex subset.
//!
//! Grammar: `pattern := (atom quantifier?)*` where
//! `atom := "\PC" | "[" class "]"` and `quantifier := "*" | "{m}" |
//! "{m,n}"`. Classes contain literal characters and `a-z` style
//! ranges. This covers every pattern in the workspace's tests; an
//! unsupported construct panics with a clear message so a new pattern
//! fails loudly rather than generating the wrong language.

use rand::rngs::StdRng;
use rand::RngExt;

/// Maximum repetitions for the `*` quantifier.
const STAR_MAX: usize = 32;

/// A parsed pattern element with its repetition bounds.
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

enum Atom {
    /// `\PC`: any printable (non-control) character.
    Printable,
    /// A character class, expanded to its members.
    Class(Vec<char>),
}

/// Non-ASCII printable characters mixed into `\PC` output so that
/// multi-byte UTF-8 boundaries are exercised.
const WIDE_PRINTABLES: &[char] = &[
    'é', 'ß', 'Ø', 'ñ', 'あ', 'か', '日', '本', '語', '中', '“', '”', '€', '¥', '√', '🦀', '🛒',
];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                Atom::Printable
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' {
                        i += 1;
                        assert!(i < chars.len(), "dangling escape in {pattern:?}");
                        members.push(chars[i]);
                        i += 1;
                    } else if chars.get(i + 1) == Some(&'-')
                        && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                        members.extend((lo..=hi).filter(|c| !c.is_control()));
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                assert!(!members.is_empty(), "empty class in {pattern:?}");
                i += 1; // closing ']'
                Atom::Class(members)
            }
            other => {
                // Treat any other character as a literal.
                i += 1;
                Atom::Class(vec![other])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, STAR_MAX)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let exact = body.trim().parse().expect("quantifier count");
                        (exact, exact)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn printable(rng: &mut StdRng) -> char {
    // Mostly ASCII (keeps outputs readable and indexable), with a
    // slice of multi-byte printables for UTF-8 boundary coverage.
    if rng.random_range(0usize..10) < 8 {
        char::from_u32(rng.random_range(0x20u32..0x7F)).expect("ascii printable")
    } else {
        WIDE_PRINTABLES[rng.random_range(0..WIDE_PRINTABLES.len())]
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.random_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Printable => out.push(printable(rng)),
                Atom::Class(members) => out.push(members[rng.random_range(0..members.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_star_and_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate("\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            let t = generate("\\PC{0,60}", &mut rng);
            assert!(t.chars().count() <= 60);
        }
    }

    #[test]
    fn concatenated_atoms() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = generate("[a-z0-9<&.][a-z0-9<&. ]{0,11}", &mut rng);
            let n = s.chars().count();
            assert!((1..=12).contains(&n), "{s:?}");
            assert!(!s.starts_with(' '), "first atom has no space: {s:?}");
        }
    }

    #[test]
    fn class_with_punctuation_and_escapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let allowed: Vec<char> = "abcdefghijklmnopqrstuvwxyz<>/&; \"='".chars().collect();
        for _ in 0..100 {
            let s = generate("[a-z<>/&; \"=']{0,120}", &mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_quantifier() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = generate("[x]{4}", &mut rng);
        assert_eq!(s, "xxxx");
    }
}
