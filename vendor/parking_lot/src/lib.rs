//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly. Poisoned locks
//! (a holder panicked) are recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all.

#![warn(missing_docs)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (poison-free `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock (poison-free `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
