//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and uniform range
//! sampling via [`RngExt::random_range`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! stable across platforms, which is all the reproduction needs (the
//! stream does not match upstream `rand`'s `StdRng`, and nothing here
//! is cryptographic).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: raw 32/64-bit output.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range
/// (`rand::distr::uniform::SampleUniform` equivalent).
pub trait SampleUniform: Sized {
    /// Draws one value from the half-open range `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws one value from the closed range `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sampling range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` (`span >= 1`) by widening
/// multiplication — bias is negligible for the spans used here and,
/// more importantly, the mapping is deterministic and platform-stable.
fn uniform_u128_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    if span <= u64::MAX as u128 {
        (rng.next_u64() as u128 * span) >> 64
    } else {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        // span > 2^64 never occurs in this workspace; modulo is fine.
        x % span
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sampling range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty sampling range");
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        low + unit * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sampling range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty sampling range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods (`rand`'s `Rng` extension surface).
pub trait RngExt: Rng {
    /// Uniform draw from `range` (half-open or inclusive, integer or
    /// float).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the
            // xoshiro authors (avoids the all-zero state).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u64);
            assert!(y <= 5);
            let f = rng.random_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let d = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn covers_full_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
