//! Offline stand-in for the `criterion` crate.
//!
//! Implements the surface the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_function`/
//! `finish`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is wall-clock
//! over `sample_size` samples with min/median/mean reported as text.
//!
//! `cargo bench` passes `--bench` to the target, which selects full
//! sampling; without it (e.g. `cargo test` compiling the bench target)
//! every benchmark body runs exactly once as a smoke test, mirroring
//! real criterion's test mode.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Summary statistics of one finished benchmark, as recorded by the
/// process-global results registry (see [`take_results`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` for grouped benches).
    pub id: String,
    /// Number of timed samples (1 in quick/smoke mode).
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample.
    pub median_ns: u64,
    /// Mean over all samples.
    pub mean_ns: u64,
    /// Whether the benchmark ran in quick (single-sample smoke) mode.
    pub quick: bool,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every benchmark result recorded so far, in execution order.
/// Lets a custom `main` (instead of `criterion_main!`) post-process the
/// run — e.g. write a machine-readable report next to the text output.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Collected sample durations (one per `iter` call).
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Times `f`, once per sample (each sample is one call — the
    /// bodies in this workspace are far above timer resolution).
    ///
    /// In full mode one untimed warmup call runs first and is
    /// discarded: the initial pass is systematically slow (cold file
    /// and allocator caches, lazy page faults, unprimed branch
    /// predictors) and skews min/median on small sample counts. Quick
    /// mode stays a single timed call — it is a smoke test, not a
    /// measurement.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.quick {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
            return;
        }
        std_black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            quick: self.criterion.quick,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            &mut bencher.samples,
            self.throughput,
            self.criterion.quick,
        );
        self
    }

    /// Ends the group (borrow-release marker, as in criterion).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; its absence means the target
        // is being smoke-run (e.g. by `cargo test`). `PAE_BENCH_QUICK=1`
        // forces smoke mode even under `cargo bench` — CI uses it to
        // exercise bench targets without paying for full sampling.
        let forced_quick = std::env::var("PAE_BENCH_QUICK").as_deref() == Ok("1");
        let quick = forced_quick || !std::env::args().any(|a| a == "--bench");
        Criterion { quick }
    }
}

impl Criterion {
    /// Applies command-line configuration (stub: detection happens in
    /// `default()`; kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = 20;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
            quick,
        };
        f(&mut bencher);
        report(id, &mut bencher.samples, None, quick);
        self
    }
}

fn report(id: &str, samples: &mut [Duration], throughput: Option<Throughput>, quick: bool) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            id: id.to_string(),
            samples: samples.len(),
            min_ns: min.as_nanos() as u64,
            median_ns: median.as_nanos() as u64,
            mean_ns: mean.as_nanos() as u64,
            quick,
        });
    if quick {
        println!("{id:<44} smoke-ran in {}", fmt_duration(mean));
        return;
    }
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median.as_nanos() > 0 => {
            format!(
                "  {:8.1} MiB/s",
                b as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  {:8.1} elem/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{id:<44} min {}  median {}  mean {}{rate}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { quick: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Bytes(1024));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1, "quick mode runs the body exactly once");
    }

    #[test]
    fn full_mode_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
            quick: false,
        };
        let mut ran = 0;
        b.iter(|| ran += 1);
        assert_eq!(ran, 6, "5 timed samples plus 1 discarded warmup pass");
        assert_eq!(b.samples.len(), 5, "the warmup pass is not a sample");
    }

    #[test]
    fn take_results_drains_recorded_benchmarks() {
        let mut c = Criterion { quick: false };
        c.bench_function("registry/unique-id", |b| b.iter(|| black_box(1 + 1)));
        let results = take_results();
        let r = results
            .iter()
            .find(|r| r.id == "registry/unique-id")
            .expect("result recorded");
        assert_eq!(r.samples, 20);
        assert!(!r.quick);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.mean_ns * 20);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
