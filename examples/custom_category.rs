//! Building a custom category from scratch: define your own attribute
//! schema (names, aliases, value generators, noise rates), generate a
//! corpus for it, and run the extraction pipeline — the path a
//! downstream user takes to test the system on their own domain shape.
//!
//! ```sh
//! cargo run --release --example custom_category
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use pae::core::{BootstrapPipeline, PipelineConfig};
use pae::synth::dataset::generate_from_schema;
use pae::synth::language::WordFactory;
use pae::synth::schema::{AttributeSpec, CategorySchema};
use pae::synth::values::{CategoricalValue, ValueGen};
use pae::synth::{CategoryKind, Language};
use pae::text::PosTag;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut factory = WordFactory::new(Language::SpaceDelim);
    factory.register("ml", PosTag::Unit);

    // Attribute 1: "roast" — categorical with two aliases and a value
    // pool where each value has up to two surface variants.
    let roast_aliases = factory.fresh_many(&mut rng, 2, 3, PosTag::Noun);
    let roast_pool: Vec<CategoricalValue> = (0..6)
        .map(|_| {
            let a = factory.fresh(&mut rng, 2, PosTag::Noun);
            let b = factory.fresh(&mut rng, 3, PosTag::Noun);
            CategoricalValue {
                canonical: a.clone(),
                variants: vec![a, b],
            }
        })
        .collect();

    // Attribute 2: "volume" — numeric with decimals.
    let volume_aliases = factory.fresh_many(&mut rng, 1, 3, PosTag::Noun);

    let schema = CategorySchema {
        name: "Specialty Coffee".into(),
        language: Language::SpaceDelim,
        attributes: vec![
            AttributeSpec::new(
                "roast",
                roast_aliases,
                ValueGen::Categorical { pool: roast_pool },
            ),
            AttributeSpec::new(
                "volume",
                volume_aliases,
                ValueGen::Numeric {
                    lo: 100,
                    hi: 1000,
                    step: 50,
                    unit: "ml".into(),
                    decimal_prob: 0.2,
                    thousands: false,
                },
            ),
        ],
        head_nouns: factory.fresh_many(&mut rng, 2, 3, PosTag::Noun),
        filler: factory.fresh_many(&mut rng, 20, 3, PosTag::Noun),
        connectives: factory.fresh_many(&mut rng, 5, 2, PosTag::Particle),
        table_page_prob: 0.35,
        table_noise_prob: 0.05,
        table_value_noise: 0.03,
        misleading_prob: 0.08,
        secondary_product_prob: 0.08,
        negation_prob: 0.03,
    };

    // Reuse any kind as the label; the schema decides everything else.
    let dataset = generate_from_schema(
        CategoryKind::Kitchen,
        schema,
        factory.into_lexicon(),
        7,
        200,
    );
    println!(
        "generated '{}': {} pages, {} truth triples",
        dataset.schema.name,
        dataset.pages.len(),
        dataset.truth.n_truth_triples()
    );

    let outcome = BootstrapPipeline::new(PipelineConfig {
        iterations: 2,
        ..Default::default()
    })
    .run(&dataset);
    let report = outcome.evaluate(&dataset);
    println!(
        "extraction: {} triples, precision {:.1}%, coverage {:.1}%",
        report.n_triples(),
        100.0 * report.precision(),
        100.0 * report.coverage()
    );
    for attr in ["roast", "volume"] {
        println!(
            "  {attr:<8} precision {:>5.1}%  coverage {:>5.1}%",
            100.0 * report.attr_precision_of(attr),
            100.0 * report.attr_coverage_of(attr)
        );
    }
}
