//! Language independence (the paper's core portability claim): the same
//! pipeline runs unchanged on an unsegmented (Japanese-like) and a
//! space-delimited (German-like) corpus — only the tokenizer differs,
//! and it is selected from the dataset's language automatically.
//!
//! ```sh
//! cargo run --release --example multilingual
//! ```

use pae::core::{BootstrapPipeline, PipelineConfig};
use pae::synth::{CategoryKind, DatasetSpec, Language};

fn main() {
    let config = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };

    for (kind, n) in [
        (CategoryKind::Garden, 250),   // Agglut (Japanese-like)
        (CategoryKind::GardenDe, 120), // SpaceDelim (German-like)
    ] {
        let dataset = DatasetSpec::new(kind, 42).products(n).generate();

        // Show the segmentation difference on a raw value.
        let tokenizer = dataset.tokenizer();
        let sample = "2.5kg";
        let tokens: Vec<String> = tokenizer
            .tokenize(sample)
            .into_iter()
            .map(|t| t.text)
            .collect();
        let lang = match dataset.language() {
            Language::Agglut => "unsegmented (Japanese-like)",
            Language::SpaceDelim => "space-delimited (German-like)",
        };
        println!("{} — {lang}", kind.name());
        println!("  tokenizer({sample:?}) = {tokens:?}");

        let outcome = BootstrapPipeline::new(config.clone()).run(&dataset);
        let report = outcome.evaluate(&dataset);
        println!(
            "  {} triples, precision {:.1}%, coverage {:.1}%\n",
            report.n_triples(),
            100.0 * report.precision(),
            100.0 * report.coverage()
        );
    }
}
