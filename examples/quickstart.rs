//! Quickstart: generate a synthetic category, run the bootstrapped
//! extraction pipeline, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pae::core::{BootstrapPipeline, PipelineConfig};
use pae::synth::{CategoryKind, DatasetSpec};

fn main() {
    // 1. A small Vacuum Cleaner corpus: 120 product pages, query log,
    //    tokenization lexicon, and exact ground truth.
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
        .products(120)
        .generate();
    println!(
        "dataset: {} pages, {} queries, {} truth triples",
        dataset.pages.len(),
        dataset.query_log.len(),
        dataset.truth.n_truth_triples()
    );

    // 2. The paper's default pipeline: CRF tagger, veto + semantic
    //    cleaning, value diversification, two bootstrap cycles.
    let config = PipelineConfig {
        iterations: 2,
        ..Default::default()
    };
    let outcome = BootstrapPipeline::new(config).run(&dataset);

    // 3. Seed quality (the paper's Table I view).
    let seed = outcome.seed_report(&dataset);
    println!(
        "seed: {} pairs, precision {:.1}%, coverage {:.1}%",
        seed.n_pairs,
        100.0 * seed.pair_precision(),
        100.0 * seed.coverage()
    );

    // 4. Final quality after bootstrapping.
    let report = outcome.evaluate(&dataset);
    println!(
        "after {} iterations: {} triples, precision {:.1}%, coverage {:.1}%",
        outcome.snapshots.len(),
        report.n_triples(),
        100.0 * report.precision(),
        100.0 * report.coverage()
    );

    // 5. A few extracted triples, with their truth judgement.
    println!("\nsample extractions:");
    for triple in outcome.final_triples().iter().take(8) {
        let judgement = dataset
            .truth
            .judge(triple.product, &triple.attr, &triple.value);
        println!(
            "  product {:>4}  {} = {:<24} [{judgement:?}]",
            triple.product, triple.attr, triple.value
        );
    }
}
