//! Complex attributes and specialized models (the paper's §VIII-C/D).
//!
//! Digital cameras carry the hardest values in the paper: shutter-speed
//! ranges (`1/4000s~30s`), pixel counts with thousands separators, and
//! confusable attribute pairs (total vs effective pixels, optical vs
//! digital zoom). This example runs the global model, reports
//! per-attribute quality, then trains a specialized model for the
//! weakest attributes and shows the coverage change.
//!
//! ```sh
//! cargo run --release --example camera_attributes
//! ```

use pae::core::specialized::run_specialized;
use pae::core::{evaluate_triples, parse_corpus, BootstrapPipeline, PipelineConfig};
use pae::synth::{CategoryKind, DatasetSpec};

fn main() {
    let dataset = DatasetSpec::new(CategoryKind::DigitalCameras, 42)
        .products(300)
        .generate();
    let corpus = parse_corpus(&dataset);
    let config = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    let outcome = BootstrapPipeline::new(config.clone()).run_on_corpus(&dataset, &corpus);
    let global = outcome.evaluate(&dataset);

    println!("global model — per canonical attribute:");
    let attrs = [
        "shutter_speed",
        "effective_pixels",
        "total_pixels",
        "weight",
        "brand",
    ];
    for attr in attrs {
        println!(
            "  {attr:<18} precision {:>5.1}%  coverage {:>5.1}%",
            100.0 * global.attr_precision_of(attr),
            100.0 * global.attr_coverage_of(attr)
        );
    }

    // Specialize on the complex trio, as the paper does for A1–A3.
    let targets = ["shutter_speed", "effective_pixels", "weight"];
    let clusters: Vec<String> = outcome
        .label_space
        .attrs()
        .iter()
        .filter(|c| {
            dataset
                .truth
                .canonical_attr(c)
                .is_some_and(|canon| targets.contains(&canon))
        })
        .cloned()
        .collect();
    let subset: Vec<&str> = clusters.iter().map(String::as_str).collect();
    if subset.is_empty() {
        println!("\nno clusters discovered for the target attributes at this scale");
        return;
    }
    let special = run_specialized(&corpus, &outcome, &subset, &config);
    let report = evaluate_triples(&special.triples, &dataset.truth);

    println!("\nspecialized model on {subset:?}:");
    for attr in targets {
        println!(
            "  {attr:<18} precision {:>5.1}%  coverage {:>5.1}%  (global coverage {:>5.1}%)",
            100.0 * report.attr_precision_of(attr),
            100.0 * report.attr_coverage_of(attr),
            100.0 * global.attr_coverage_of(attr)
        );
    }
}
